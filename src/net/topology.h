// Explicit switch topologies: the fabric above the hosts.
//
// The seed repo modeled the paper's testbed — 16 nodes behind one
// non-blocking crossbar — implicitly: a frame's wire stage charged only the
// destination host's link_in resource, so the switch fabric itself could
// never be the bottleneck. Production scale means hundreds-to-thousands of
// nodes behind *oversubscribed* uplinks, where edge→core contention and
// incast onto hot nodes dominate. Topology makes that fabric explicit:
//
//   hosts attach to edge switches; edge switches reach each other through
//   capacity-limited fabric links (edge↔aggregation↔core), each modeled as
//   a sim::Resource with its own serialization rate. A routed (src, dst)
//   path charges every traversed link in order, so shared uplinks queue and
//   the queueing is visible per link in the metrics registry.
//
// Presets:
//   single_crossbar  the historical model. route() is always empty, no
//                    links exist, and the executed schedule is bit-identical
//                    to the pre-topology fabric (digest pins prove it).
//   fat_tree(k)      the classic 3-level k-ary fat-tree: k pods of k/2 edge
//                    and k/2 aggregation switches, (k/2)^2 cores, up to
//                    k^3/4 hosts filled in id order. oversubscription > 1
//                    slows the agg↔core tier by that factor.
//   edge_core(m,u,r) 2-level leaf-spine: edge switches of m hosts, u
//                    uplinks each (one per core switch), sized so aggregate
//                    host bandwidth under an edge is r times its aggregate
//                    uplink bandwidth.
//
// Routing is deterministic and symmetric by construction: the up-path
// switch choice is a pure function of (src + dst), so route(a, b) is the
// mirror of route(b, a) and two Topology instances built from the same
// (spec, node_count) route identically (tests/net/topology_test.cc).
//
// Layering: Topology lives below Cluster (cluster.h hands each Node a
// pointer) and is consulted by net::Pipe's wire stage, which traverses the
// routed path *before* charging the destination host's link_in.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace sv::net {

enum class TopologyKind { kSingleCrossbar, kFatTree, kEdgeCore };

[[nodiscard]] const char* topology_kind_name(TopologyKind k);

struct TopologySpec {
  TopologyKind kind = TopologyKind::kSingleCrossbar;

  /// kFatTree: the (even) arity k. Capacity k^3/4 hosts.
  int fat_tree_k = 4;

  /// kEdgeCore: hosts per edge switch and uplinks per edge (= number of
  /// core switches; uplink i of every edge lands on core i).
  int nodes_per_edge = 16;
  int uplinks_per_edge = 2;

  /// Oversubscription ratio r >= 1: aggregate host bandwidth below an edge
  /// (fat-tree: below a pod's aggregation tier) is r times the aggregate
  /// bandwidth of the links above it. r = 1 is full bisection. Integer so
  /// link serialization costs stay exact.
  int oversubscription = 1;

  /// Serialization cost of a host-speed fabric link. 10 ns/B ≈ 800 Mbps,
  /// matching the cLAN DMA path the calibration profiles model.
  PerByteCost host_link = PerByteCost::picos_per_byte(10'000);

  /// Extra propagation per traversed fabric link (switch transit latency).
  /// Pure latency, not occupancy, so it cannot reorder frames.
  SimTime hop_latency = SimTime::nanoseconds(500);

  [[nodiscard]] static TopologySpec single_crossbar();
  [[nodiscard]] static TopologySpec fat_tree(int k, int oversubscription = 1);
  [[nodiscard]] static TopologySpec edge_core(int nodes_per_edge,
                                              int uplinks_per_edge,
                                              int oversubscription);

  /// Host capacity of the fabric this spec describes (INT32_MAX for the
  /// crossbar: it has no structure to exhaust).
  [[nodiscard]] int max_nodes() const;
};

class Topology {
 public:
  /// One directed fabric link between two switches. `res` (capacity 1)
  /// serializes frames; `per_byte` is its serialization rate.
  struct Link {
    std::string name;
    int from_switch = 0;
    int to_switch = 0;
    PerByteCost per_byte;
    std::unique_ptr<sim::Resource> res;
    obs::Counter* c_frames = nullptr;
    obs::Counter* c_bytes = nullptr;
    obs::Counter* c_busy_ns = nullptr;
    obs::Counter* c_wait_ns = nullptr;

    /// Implied rate in bytes/second (reporting / capacity checks).
    [[nodiscard]] double bytes_per_sec() const {
      return per_byte.ps_per_byte() == 0
                 ? 0.0
                 : 1e12 / static_cast<double>(per_byte.ps_per_byte());
    }
  };

  /// A routed path: at most 4 fabric links (edge→agg→core→agg→edge), in
  /// traversal order. Empty for same-edge (crossbar) traffic.
  struct Path {
    std::uint32_t hops = 0;
    std::uint32_t link[4] = {0, 0, 0, 0};
  };

  /// Builds the fabric for `node_count` hosts. node_count must not exceed
  /// spec.max_nodes(). The crossbar spec builds no links and registers no
  /// metrics, preserving the pre-topology registry byte-for-byte.
  Topology(sim::Simulation* sim, const TopologySpec& spec, int node_count);

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] const TopologySpec& spec() const { return spec_; }
  [[nodiscard]] int node_count() const { return node_count_; }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const Link& link(std::size_t i) const { return *links_[i]; }

  /// Edge switch hosting `node` (0 for the crossbar).
  [[nodiscard]] int edge_switch_of(int node) const;
  [[nodiscard]] int edge_switch_count() const { return edge_count_; }

  /// The unique deterministic path from src to dst. Pure: no state changes,
  /// so two calls (or two Topology instances from the same spec) agree.
  [[nodiscard]] Path route(int src, int dst) const;
  [[nodiscard]] std::size_t hop_count(int src, int dst) const {
    return route(src, dst).hops;
  }

  /// Extra propagation latency of the routed path (hops * hop_latency).
  [[nodiscard]] SimTime path_latency(int src, int dst) const;

  /// Charges every link on route(src, dst), in order: FIFO-acquires the
  /// link, holds it for the frame's serialization time, releases. Must run
  /// inside a simulated process (net::Pipe's wire stage). This is where
  /// uplink contention and incast queueing physically happen.
  void traverse(int src, int dst, std::uint64_t bytes);

  /// Aggregate uplink bandwidth leaving edge switch `e`, in bytes/second
  /// (fat-tree: the pod's agg→core tier, attributed evenly across the
  /// pod's edges). The capacity contract topology_test checks:
  /// host_bw * nodes_under_edge == oversubscription * this value.
  [[nodiscard]] double edge_uplink_bytes_per_sec(int e) const;

 private:
  void add_link(std::string name, int from_sw, int to_sw,
                PerByteCost per_byte);
  void build_fat_tree();
  void build_edge_core();

  sim::Simulation* sim_;
  TopologySpec spec_;
  int node_count_;
  int edge_count_ = 1;
  // Fat-tree shape (derived from spec_.fat_tree_k).
  int half_k_ = 0;       // k/2: hosts per edge, edges per pod, aggs per pod
  int cores_ = 0;        // (k/2)^2
  std::vector<std::unique_ptr<Link>> links_;
  // Dense link-id lookup tables, filled during build:
  //   fat-tree: up[edge][agg_in_pod], down[edge][agg_in_pod],
  //             agg_up[pod][agg_in_pod][core_leg], agg_down[...]
  //   edge-core: up[edge][uplink], down[edge][uplink]
  std::vector<std::uint32_t> edge_up_;    // edge-tier up links
  std::vector<std::uint32_t> edge_down_;  // edge-tier down links
  std::vector<std::uint32_t> agg_up_;     // agg→core
  std::vector<std::uint32_t> agg_down_;   // core→agg
};

}  // namespace sv::net
