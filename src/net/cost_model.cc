#include "net/cost_model.h"

#include <algorithm>

namespace sv::net {
namespace {

SimTime max3(SimTime a, SimTime b, SimTime c) {
  return std::max(a, std::max(b, c));
}

}  // namespace

CostModel::CostModel(CalibrationProfile profile)
    : profile_(std::move(profile)) {}

std::uint64_t CostModel::segments(std::uint64_t n) const {
  if (n == 0) return 0;
  const std::uint64_t seg = profile_.segment_bytes;
  return (n + seg - 1) / seg;
}

SimTime CostModel::sender_time(std::uint64_t n) const {
  return profile_.send_fixed +
         profile_.send_per_seg * static_cast<std::int64_t>(segments(n)) +
         profile_.send_per_byte.for_bytes(n);
}

SimTime CostModel::wire_time(std::uint64_t n) const {
  return profile_.wire_per_seg * static_cast<std::int64_t>(segments(n)) +
         profile_.wire_per_byte.for_bytes(n);
}

SimTime CostModel::recv_time(std::uint64_t n) const {
  return profile_.recv_fixed +
         profile_.recv_per_seg * static_cast<std::int64_t>(segments(n)) +
         profile_.recv_per_byte.for_bytes(n);
}

SimTime CostModel::one_way(std::uint64_t n) const {
  const auto nseg = static_cast<std::int64_t>(segments(n));
  if (nseg == 0) {
    return profile_.send_fixed + profile_.propagation + profile_.recv_fixed;
  }
  const std::uint64_t c = std::min<std::uint64_t>(n, profile_.segment_bytes);
  const SimTime s =
      profile_.send_per_seg + profile_.send_per_byte.for_bytes(c);
  const SimTime w = profile_.wire_per_seg + profile_.wire_per_byte.for_bytes(c);
  const SimTime r = profile_.recv_per_seg + profile_.recv_per_byte.for_bytes(c);
  // First segment crosses all three stages; subsequent segments arrive at
  // the bottleneck-stage cadence.
  return profile_.send_fixed + profile_.recv_fixed + profile_.propagation +
         s + w + r + (nseg - 1) * max3(s, w, r);
}

SimTime CostModel::round_trip(std::uint64_t n) const {
  return one_way(n) * 2;
}

SimTime CostModel::pingpong_latency(std::uint64_t n) const {
  return one_way(n);
}

SimTime CostModel::copy(std::uint64_t n) const {
  return profile_.copy_fixed + profile_.copy_per_byte.for_bytes(n);
}

SimTime CostModel::stream_cycle(std::uint64_t n) const {
  const SimTime sender = sender_time(n);
  const SimTime wire = wire_time(n);
  const SimTime recv = recv_time(n);
  return max3(sender, wire, recv);
}

double CostModel::stream_bandwidth_mbps(std::uint64_t n) const {
  if (n == 0) return 0.0;
  return throughput_mbps(n, stream_cycle(n));
}

std::uint64_t CostModel::min_block_for_bandwidth(double mbps,
                                                 std::uint64_t limit) const {
  if (stream_bandwidth_mbps(limit) < mbps) return limit;
  std::uint64_t lo = 1, hi = limit;
  // Bandwidth is monotone non-decreasing in message size for this model
  // (fixed costs amortize; per-byte costs are constant).
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (stream_bandwidth_mbps(mid) >= mbps) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::uint64_t CostModel::max_block_for_latency(SimTime bound) const {
  if (one_way(1) > bound) return 0;
  std::uint64_t lo = 1, hi = 1;
  while (one_way(hi) <= bound && hi < (1ULL << 40)) hi *= 2;
  // Invariant: one_way(lo) <= bound < one_way(hi).
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (one_way(mid) <= bound) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::uint64_t CostModel::pipelining_block(PerByteCost compute,
                                          std::uint64_t limit) const {
  // Find n where one_way(n) == compute.for_bytes(n). Transfer has a fixed
  // head start (one_way(0) > 0), so if compute's slope never catches up we
  // return limit.
  if (one_way(limit) > compute.for_bytes(limit)) return limit;
  std::uint64_t lo = 1, hi = limit;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (compute.for_bytes(mid) >= one_way(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace sv::net
