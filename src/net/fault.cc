#include "net/fault.h"

#include <algorithm>

namespace sv::net {

bool FaultPlan::enabled() const {
  if (all_links.enabled()) return true;
  if (!nodes.empty()) return true;
  return std::any_of(links.begin(), links.end(),
                     [](const auto& kv) { return kv.second.enabled(); });
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed,
                             obs::Registry* registry)
    : plan_(std::move(plan)),
      seed_(seed),
      owned_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                          : nullptr),
      registry_(registry == nullptr ? owned_registry_.get() : registry),
      frames_seen_(&registry_->counter("fault.frames_seen")),
      frames_dropped_(&registry_->counter("fault.frames_dropped")),
      frames_delayed_(&registry_->counter("fault.frames_delayed")) {}

FaultInjector::LinkState& FaultInjector::link_state(int src, int dst) {
  const std::pair<int, int> key{src, dst};
  auto it = link_states_.find(key);
  if (it == link_states_.end()) {
    // Derive the stream purely from (seed, src, dst) so the first-touch
    // order of links cannot change any link's decision sequence.
    std::uint64_t mix =
        seed_ ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                  << 32) |
                 static_cast<std::uint32_t>(dst));
    const std::uint64_t link_seed = splitmix64_next(mix);
    it = link_states_.emplace(key, LinkState(link_seed)).first;
    const std::string link = "{link=" + std::to_string(src) + "->" +
                             std::to_string(dst) + "}";
    it->second.seen = &registry_->counter("fault.frames_seen" + link);
    it->second.dropped = &registry_->counter("fault.frames_dropped" + link);
    it->second.delayed = &registry_->counter("fault.frames_delayed" + link);
  }
  return it->second;
}

FaultDecision FaultInjector::on_frame(int src, int dst) {
  const LinkFault& spec = plan_.link(src, dst);
  FaultDecision d;
  d.recovery_delay = spec.recovery_delay;
  if (!spec.enabled()) return d;

  LinkState& st = link_state(src, dst);
  const std::uint64_t frame = st.next_frame++;
  frames_seen_->inc();
  st.seen->inc();

  if (std::find(spec.drop_frames.begin(), spec.drop_frames.end(), frame) !=
      spec.drop_frames.end()) {
    d.drop = true;
  } else if (spec.loss > 0.0) {
    const double p = st.in_burst ? spec.burst_continue : spec.loss;
    d.drop = st.rng.bernoulli(p);
  }
  st.in_burst = d.drop && spec.burst_continue > 0.0;
  if (d.drop) {
    frames_dropped_->inc();
    st.dropped->inc();
    return d;
  }

  if (spec.max_jitter > SimTime::zero()) {
    d.extra_delay =
        SimTime(st.rng.uniform_int(0, spec.max_jitter.ns()));
    if (d.extra_delay > SimTime::zero()) {
      frames_delayed_->inc();
      st.delayed->inc();
    }
  }
  return d;
}

std::int64_t FaultInjector::compute_factor(int node, SimTime now) const {
  std::int64_t factor = 1;
  for (const NodeFault& nf : plan_.nodes) {
    if (nf.node != node || nf.is_stall()) continue;
    if (now >= nf.start && now < nf.start + nf.duration) {
      factor *= nf.slow_factor;
    }
  }
  return factor;
}

}  // namespace sv::net
