// Calibration profiles for the three transports the paper measures.
//
// The paper's testbed (16x Dell Precision 420, dual 1 GHz PIII, GigaNet
// cLAN1000 + cLAN5300, Linux 2.2.17) is not reproducible; instead each
// transport is described by a staged cost model whose constants are fitted
// to the published micro-benchmarks (Figure 4) and pipelining observations
// (Section 5.2.3):
//
//   | target                         | VIA    | SocketVIA | kernel TCP |
//   |--------------------------------|--------|-----------|------------|
//   | small-message one-way latency  | ~9 us  | ~9.5 us   | ~47.5 us   |
//   | peak streaming bandwidth       | 795 Mb | 763 Mb    | 510 Mb     |
//
// A message of n bytes is processed in three pipelined stages, each chunked
// into `segment_bytes` segments:
//   sender host:  send_fixed  + nseg*send_per_seg + n*send_per_byte
//   wire/DMA:                   nseg*wire_per_seg + n*wire_per_byte
//   receiver host: recv_fixed + nseg*recv_per_seg + n*recv_per_byte
// plus `propagation` (cable + switch) between wire and receiver stages.
//
// Interpretation of the fitted constants:
//  - kernel TCP pays large fixed syscall/context-switch costs (send_fixed,
//    recv_fixed ~13.5 us), per-MSS protocol work, and per-byte checksum+copy
//    costs on the receive path; its bottleneck is receiver host processing
//    (~22.9 us per 1460 B segment -> 510 Mbps).
//  - VIA is limited by the 32-bit/33 MHz PCI DMA path (~10 ns/B -> 795 Mbps)
//    with tiny per-descriptor overheads and ~9 us end-to-end setup.
//  - SocketVIA adds small socket-emulation bookkeeping per message and a
//    slightly higher effective per-byte wire cost (credit/header traffic on
//    the same DMA path), landing at 763 Mbps / 9.5 us.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace sv::net {

enum class Transport { kVia, kSocketVia, kKernelTcp };

[[nodiscard]] const char* transport_name(Transport t);

struct CalibrationProfile {
  std::string name;

  // Sender host stage.
  SimTime send_fixed;
  SimTime send_per_seg;
  PerByteCost send_per_byte;

  // Wire / DMA stage (charged against the receiver's link-in resource).
  SimTime wire_per_seg;
  PerByteCost wire_per_byte;
  SimTime propagation;

  // Receiver host stage (protocol processing).
  SimTime recv_fixed;
  SimTime recv_per_seg;
  PerByteCost recv_per_byte;

  // Attribution of the host-stage constants above to payload *copies*
  // (DESIGN.md §10): the memcpy component of one user↔kernel crossing.
  // Already embedded in send_per_byte/recv_per_byte — CostModel::copy()
  // never adds to one_way()/stream_cycle(); it exists so experiments can
  // scale copy cost as an independent variable (bench/ablation_copycost)
  // and so the ledger can attribute time to counted copy events. Zero for
  // the zero-copy transports (VIA, SocketVIA).
  SimTime copy_fixed{};
  PerByteCost copy_per_byte{};

  // Segmentation unit: TCP MSS, or the VIA DMA burst size.
  std::uint32_t segment_bytes = 1460;

  // Flow control: bytes in flight before the sender blocks
  // (socket buffer for TCP; credits * chunk for SocketVIA).
  std::uint64_t window_bytes = 64 * 1024;

  // Internal pipelining granularity of the executed fabric: messages are
  // streamed through the three stages in frames of this size, so large
  // transfers overlap stages the way real segment pipelines do. Set equal
  // to segment_bytes by the factories, which makes the executed fabric's
  // uncontended one-way time match CostModel::one_way exactly.
  std::uint64_t pipeline_frame_bytes = 4096;

  [[nodiscard]] static CalibrationProfile via();
  [[nodiscard]] static CalibrationProfile socket_via();
  /// Kernel TCP over the cLAN wire via the LANE IP-to-VI bridge — the
  /// "traditional sockets" the paper measures at 510 Mbps / ~47.5 us
  /// (Fast Ethernet could not reach 510 Mbps, so the paper's TCP numbers
  /// are LANE numbers).
  [[nodiscard]] static CalibrationProfile kernel_tcp();
  /// Kernel TCP over the testbed's 100 Mb/s Fast Ethernet — the paper's
  /// secondary interconnect; not plotted in its figures but useful as an
  /// additional baseline in ablations.
  [[nodiscard]] static CalibrationProfile fast_ethernet_tcp();
  [[nodiscard]] static CalibrationProfile for_transport(Transport t);
};

}  // namespace sv::net
