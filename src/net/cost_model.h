// Closed-form predictions of the staged transport model.
//
// The fabric (fabric.h) *executes* the stages as simulated processes with
// shared resources; CostModel computes what an uncontended transfer costs
// analytically. Applications use it for the paper's "DR" (data
// repartitioning) policy — choosing a block size from a target bandwidth or
// latency — and tests use it to cross-validate the executed fabric.
#pragma once

#include <cstdint>

#include "net/calibration.h"

namespace sv::net {

class CostModel {
 public:
  explicit CostModel(CalibrationProfile profile);

  [[nodiscard]] const CalibrationProfile& profile() const { return profile_; }

  /// Number of segments a message of n bytes occupies (>= 1; 0 for n == 0).
  [[nodiscard]] std::uint64_t segments(std::uint64_t n) const;

  /// Per-message stage totals.
  [[nodiscard]] SimTime sender_time(std::uint64_t n) const;
  [[nodiscard]] SimTime wire_time(std::uint64_t n) const;
  [[nodiscard]] SimTime recv_time(std::uint64_t n) const;

  /// Uncontended one-way delivery time of a single n-byte message,
  /// accounting for segment-level pipelining across the three stages.
  [[nodiscard]] SimTime one_way(std::uint64_t n) const;

  /// Round-trip time (symmetric paths), e.g. for ping-pong latency tests.
  [[nodiscard]] SimTime round_trip(std::uint64_t n) const;

  /// Steady-state per-message cycle when messages of n bytes stream
  /// back-to-back: the largest per-message stage total.
  [[nodiscard]] SimTime stream_cycle(std::uint64_t n) const;

  /// Streaming bandwidth in Mbps for back-to-back n-byte messages.
  [[nodiscard]] double stream_bandwidth_mbps(std::uint64_t n) const;

  /// Half-duplex ping-pong "latency" as micro-benchmarks report it: RTT/2.
  [[nodiscard]] SimTime pingpong_latency(std::uint64_t n) const;

  /// Cost attributed to ONE payload copy of n bytes (the memcpy component
  /// of a user↔kernel crossing). Already included in sender_time/recv_time
  /// for the transports that copy — this is an attribution/ablation term,
  /// not an additional charge (see CalibrationProfile::copy_per_byte).
  [[nodiscard]] SimTime copy(std::uint64_t n) const;

  /// Smallest message size whose streaming bandwidth reaches `mbps`
  /// (the paper's U2-vs-U1 message size; Figure 2a). Returns 0 if even
  /// 1-byte messages suffice, or `limit` if unreachable below it.
  [[nodiscard]] std::uint64_t min_block_for_bandwidth(
      double mbps, std::uint64_t limit = 64 * 1024 * 1024) const;

  /// Largest message size whose uncontended one-way time stays within
  /// `bound` (the paper's latency-guarantee block choice). Returns 0 when
  /// even 1 byte misses the bound.
  [[nodiscard]] std::uint64_t max_block_for_latency(SimTime bound) const;

  /// Block size at which transfer time equals computation time
  /// (`compute` per byte) — the paper's "perfect pipelining" block
  /// (16 KB for TCP, 2 KB for SocketVIA at 18 ns/B). Returns `limit` when
  /// transfer is always faster than compute up to limit.
  [[nodiscard]] std::uint64_t pipelining_block(
      PerByteCost compute, std::uint64_t limit = 64 * 1024 * 1024) const;

 private:
  CalibrationProfile profile_;
};

}  // namespace sv::net
