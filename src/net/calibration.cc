#include "net/calibration.h"

namespace sv::net {

const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kVia: return "VIA";
    case Transport::kSocketVia: return "SocketVIA";
    case Transport::kKernelTcp: return "TCP";
  }
  return "?";
}

CalibrationProfile CalibrationProfile::via() {
  CalibrationProfile p;
  p.name = "VIA";
  p.send_fixed = SimTime::nanoseconds(3600);
  p.send_per_seg = SimTime::nanoseconds(300);   // doorbell + descriptor
  p.send_per_byte = PerByteCost::zero();        // zero-copy DMA from user buf
  p.wire_per_seg = SimTime::nanoseconds(200);
  p.wire_per_byte = PerByteCost::picos_per_byte(10'000);  // PCI ~99.4 MB/s
  p.propagation = SimTime::nanoseconds(1000);   // cLAN switch + cable
  p.recv_fixed = SimTime::nanoseconds(3600);
  p.recv_per_seg = SimTime::nanoseconds(300);   // completion handling
  p.recv_per_byte = PerByteCost::zero();
  p.segment_bytes = 4096;                       // NIC DMA burst
  p.pipeline_frame_bytes = p.segment_bytes;
  p.window_bytes = 256 * 1024;                  // deep descriptor queue
  return p;
}

CalibrationProfile CalibrationProfile::socket_via() {
  CalibrationProfile p = via();
  p.name = "SocketVIA";
  p.send_fixed = SimTime::nanoseconds(3850);    // socket-emulation bookkeeping
  p.recv_fixed = SimTime::nanoseconds(3850);
  p.send_per_seg = SimTime::nanoseconds(400);
  p.recv_per_seg = SimTime::nanoseconds(400);
  // Credit/header traffic shares the DMA path: 10.45 ns/B -> 763 Mbps peak.
  p.wire_per_byte = PerByteCost::picos_per_byte(10'450);
  p.window_bytes = 128 * 1024;                  // 32 credits x 4 KB chunks
  return p;
}

CalibrationProfile CalibrationProfile::kernel_tcp() {
  CalibrationProfile p;
  p.name = "TCP";
  p.send_fixed = SimTime::nanoseconds(13'500);  // syscall + kernel entry
  p.send_per_seg = SimTime::nanoseconds(7'000);
  p.send_per_byte = PerByteCost::picos_per_byte(9'000);   // user->kernel copy
  p.wire_per_seg = SimTime::nanoseconds(400);   // 58 B headers on the wire
  p.wire_per_byte = PerByteCost::picos_per_byte(6'400);   // 1.25 Gb/s link
  p.propagation = SimTime::nanoseconds(5000);   // IP path + switch
  p.recv_fixed = SimTime::nanoseconds(13'500);
  p.recv_per_seg = SimTime::nanoseconds(8'000); // interrupt + TCP/IP input
  // checksum + kernel->user copy; makes the receiver the 510 Mbps bottleneck:
  // 8 us + 1460 B * 10.2 ns/B = 22.9 us per segment.
  p.recv_per_byte = PerByteCost::picos_per_byte(10'200);
  p.segment_bytes = 1460;                       // Ethernet MSS
  p.pipeline_frame_bytes = p.segment_bytes;
  p.window_bytes = 64 * 1024;                   // default socket buffer
  // Copy attribution: the send-side 9.0 ns/B *is* the user->kernel memcpy;
  // the receive path's 10.2 ns/B splits into checksum + the kernel->user
  // copy. One crossing is attributed at the send-side copy rate.
  p.copy_per_byte = p.send_per_byte;
  return p;
}

CalibrationProfile CalibrationProfile::fast_ethernet_tcp() {
  CalibrationProfile p = kernel_tcp();
  p.name = "TCP/FastEthernet";
  // 100 Mb/s wire (12.5 MB/s): the wire, not the host, is the bottleneck.
  p.wire_per_byte = PerByteCost::picos_per_byte(80'000);
  p.wire_per_seg = SimTime::nanoseconds(4'640);  // 58 B headers at 100 Mb/s
  p.propagation = SimTime::microseconds(30);     // store-and-forward switch
  return p;
}

CalibrationProfile CalibrationProfile::for_transport(Transport t) {
  switch (t) {
    case Transport::kVia: return via();
    case Transport::kSocketVia: return socket_via();
    case Transport::kKernelTcp: return kernel_tcp();
  }
  return via();
}

}  // namespace sv::net
