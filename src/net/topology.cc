#include "net/topology.h"

#include <climits>

#include "common/check.h"
#include "sim/resource.h"

namespace sv::net {

const char* topology_kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kSingleCrossbar:
      return "crossbar";
    case TopologyKind::kFatTree:
      return "fat_tree";
    case TopologyKind::kEdgeCore:
      return "edge_core";
  }
  return "?";
}

TopologySpec TopologySpec::single_crossbar() { return TopologySpec{}; }

TopologySpec TopologySpec::fat_tree(int k, int oversubscription) {
  TopologySpec s;
  s.kind = TopologyKind::kFatTree;
  s.fat_tree_k = k;
  s.oversubscription = oversubscription;
  return s;
}

TopologySpec TopologySpec::edge_core(int nodes_per_edge, int uplinks_per_edge,
                                     int oversubscription) {
  TopologySpec s;
  s.kind = TopologyKind::kEdgeCore;
  s.nodes_per_edge = nodes_per_edge;
  s.uplinks_per_edge = uplinks_per_edge;
  s.oversubscription = oversubscription;
  return s;
}

int TopologySpec::max_nodes() const {
  switch (kind) {
    case TopologyKind::kSingleCrossbar:
      return INT_MAX;
    case TopologyKind::kFatTree:
      return fat_tree_k * fat_tree_k * fat_tree_k / 4;
    case TopologyKind::kEdgeCore:
      // An edge switch is a finite crossbar but edges are unbounded.
      return INT_MAX;
  }
  return 0;
}

Topology::Topology(sim::Simulation* sim, const TopologySpec& spec,
                   int node_count)
    : sim_(sim), spec_(spec), node_count_(node_count) {
  SV_ASSERT(node_count > 0, "Topology: empty cluster");
  SV_ASSERT(spec_.oversubscription >= 1,
            "Topology: oversubscription ratio must be >= 1");
  switch (spec_.kind) {
    case TopologyKind::kSingleCrossbar:
      // No fabric structure, no links, no metrics: the historical model.
      edge_count_ = 1;
      break;
    case TopologyKind::kFatTree:
      SV_ASSERT(spec_.fat_tree_k >= 2 && spec_.fat_tree_k % 2 == 0,
                "Topology: fat-tree arity must be even and >= 2");
      SV_ASSERT(node_count <= spec_.max_nodes(),
                "Topology: node count exceeds fat-tree host capacity k^3/4");
      build_fat_tree();
      break;
    case TopologyKind::kEdgeCore:
      SV_ASSERT(spec_.nodes_per_edge >= 1 && spec_.uplinks_per_edge >= 1,
                "Topology: edge-core shape must be positive");
      build_edge_core();
      break;
  }
}

void Topology::add_link(std::string name, int from_sw, int to_sw,
                        PerByteCost per_byte) {
  auto l = std::make_unique<Link>();
  l->name = std::move(name);
  l->from_switch = from_sw;
  l->to_switch = to_sw;
  l->per_byte = per_byte;
  l->res = std::make_unique<sim::Resource>(sim_, 1, "topo." + l->name);
  obs::Registry& reg = sim_->obs().registry;
  const std::string ll = "{link=" + l->name + "}";
  l->c_frames = &reg.counter("topo.link_frames" + ll);
  l->c_bytes = &reg.counter("topo.link_bytes" + ll);
  l->c_busy_ns = &reg.counter("topo.link_busy_ns" + ll);
  l->c_wait_ns = &reg.counter("topo.link_wait_ns" + ll);
  reg.counter("topo.links").inc();
  links_.push_back(std::move(l));
}

void Topology::build_fat_tree() {
  const int k = spec_.fat_tree_k;
  half_k_ = k / 2;
  cores_ = half_k_ * half_k_;
  const int pods = k;
  const int edges = pods * half_k_;
  edge_count_ = edges;
  // Switch-id spaces for naming/validation: edges, then aggs, then cores.
  const int agg_base = edges;
  const int core_base = edges + pods * half_k_;

  const PerByteCost host = spec_.host_link;
  const PerByteCost core_tier = PerByteCost::picos_per_byte(
      host.ps_per_byte() * spec_.oversubscription);

  // Edge tier: every edge switch pairs with every aggregation switch in its
  // pod, at host speed (k/2 hosts share k/2 uplinks — 1:1 below the pod).
  edge_up_.assign(static_cast<std::size_t>(edges) * half_k_, 0);
  edge_down_.assign(static_cast<std::size_t>(edges) * half_k_, 0);
  for (int p = 0; p < pods; ++p) {
    for (int e = 0; e < half_k_; ++e) {
      const int edge = p * half_k_ + e;
      for (int a = 0; a < half_k_; ++a) {
        const int agg = p * half_k_ + a;
        const std::string en = "p" + std::to_string(p) + ".e" +
                               std::to_string(e);
        const std::string an = "p" + std::to_string(p) + ".a" +
                               std::to_string(a);
        edge_up_[static_cast<std::size_t>(edge) * half_k_ + a] =
            static_cast<std::uint32_t>(links_.size());
        add_link(en + "->" + an, edge, agg_base + agg, host);
        edge_down_[static_cast<std::size_t>(edge) * half_k_ + a] =
            static_cast<std::uint32_t>(links_.size());
        add_link(an + "->" + en, agg_base + agg, edge, host);
      }
    }
  }

  // Aggregation tier: agg j of every pod owns core legs
  // [j*k/2, (j+1)*k/2), scaled by the oversubscription ratio.
  agg_up_.assign(static_cast<std::size_t>(pods) * half_k_ * half_k_, 0);
  agg_down_.assign(static_cast<std::size_t>(pods) * half_k_ * half_k_, 0);
  for (int p = 0; p < pods; ++p) {
    for (int a = 0; a < half_k_; ++a) {
      const int agg = p * half_k_ + a;
      for (int leg = 0; leg < half_k_; ++leg) {
        const int core = a * half_k_ + leg;
        const std::string an = "p" + std::to_string(p) + ".a" +
                               std::to_string(a);
        const std::string cn = "c" + std::to_string(core);
        const std::size_t idx =
            (static_cast<std::size_t>(p) * half_k_ + a) * half_k_ + leg;
        agg_up_[idx] = static_cast<std::uint32_t>(links_.size());
        add_link(an + "->" + cn, agg_base + agg, core_base + core, core_tier);
        agg_down_[idx] = static_cast<std::uint32_t>(links_.size());
        add_link(cn + "->" + an, core_base + core, agg_base + agg, core_tier);
      }
    }
  }
}

void Topology::build_edge_core() {
  const int m = spec_.nodes_per_edge;
  const int u = spec_.uplinks_per_edge;
  const int edges = (node_count_ + m - 1) / m;
  edge_count_ = edges;
  const int core_base = edges;

  // Uplink rate: aggregate host bandwidth under an edge (m links) is
  // `oversubscription` times the edge's aggregate uplink bandwidth
  // (u links), so each uplink serializes at host * u * r / m ps per byte.
  const std::int64_t up_ps = spec_.host_link.ps_per_byte() * u *
                             spec_.oversubscription / m;
  const PerByteCost uplink = PerByteCost::picos_per_byte(
      up_ps > 0 ? up_ps : 1);

  edge_up_.assign(static_cast<std::size_t>(edges) * u, 0);
  edge_down_.assign(static_cast<std::size_t>(edges) * u, 0);
  for (int e = 0; e < edges; ++e) {
    for (int i = 0; i < u; ++i) {
      const std::string en = "e" + std::to_string(e);
      const std::string cn = "c" + std::to_string(i);
      edge_up_[static_cast<std::size_t>(e) * u + i] =
          static_cast<std::uint32_t>(links_.size());
      add_link(en + "->" + cn, e, core_base + i, uplink);
      edge_down_[static_cast<std::size_t>(e) * u + i] =
          static_cast<std::uint32_t>(links_.size());
      add_link(cn + "->" + en, core_base + i, e, uplink);
    }
  }
}

int Topology::edge_switch_of(int node) const {
  SV_ASSERT(node >= 0 && node < node_count_,
            "Topology::edge_switch_of: unknown node");
  switch (spec_.kind) {
    case TopologyKind::kSingleCrossbar:
      return 0;
    case TopologyKind::kFatTree:
      return node / half_k_;
    case TopologyKind::kEdgeCore:
      return node / spec_.nodes_per_edge;
  }
  return 0;
}

Topology::Path Topology::route(int src, int dst) const {
  Path p;
  if (spec_.kind == TopologyKind::kSingleCrossbar || src == dst) return p;
  const int es = edge_switch_of(src);
  const int ed = edge_switch_of(dst);
  if (es == ed) return p;  // same edge switch: intra-crossbar, no fabric hop

  // The up-path choice is a pure symmetric function of (src + dst): the
  // same aggregation/core serves both directions, so route(a, b) mirrors
  // route(b, a) and repeated calls agree bit-for-bit.
  const std::uint32_t key =
      static_cast<std::uint32_t>(src) + static_cast<std::uint32_t>(dst);

  if (spec_.kind == TopologyKind::kEdgeCore) {
    const int u = spec_.uplinks_per_edge;
    const int i = static_cast<int>(key % static_cast<std::uint32_t>(u));
    p.hops = 2;
    p.link[0] = edge_up_[static_cast<std::size_t>(es) * u + i];
    p.link[1] = edge_down_[static_cast<std::size_t>(ed) * u + i];
    return p;
  }

  // Fat-tree.
  const int ps = es / half_k_;
  const int pd = ed / half_k_;
  if (ps == pd) {
    const int a = static_cast<int>(key % static_cast<std::uint32_t>(half_k_));
    p.hops = 2;
    p.link[0] = edge_up_[static_cast<std::size_t>(es) * half_k_ + a];
    p.link[1] = edge_down_[static_cast<std::size_t>(ed) * half_k_ + a];
    return p;
  }
  const int core =
      static_cast<int>(key % static_cast<std::uint32_t>(cores_));
  const int a = core / half_k_;   // the pod agg wired to this core
  const int leg = core % half_k_;
  p.hops = 4;
  p.link[0] = edge_up_[static_cast<std::size_t>(es) * half_k_ + a];
  p.link[1] =
      agg_up_[(static_cast<std::size_t>(ps) * half_k_ + a) * half_k_ + leg];
  p.link[2] =
      agg_down_[(static_cast<std::size_t>(pd) * half_k_ + a) * half_k_ + leg];
  p.link[3] = edge_down_[static_cast<std::size_t>(ed) * half_k_ + a];
  return p;
}

SimTime Topology::path_latency(int src, int dst) const {
  return spec_.hop_latency *
         static_cast<std::int64_t>(route(src, dst).hops);
}

void Topology::traverse(int src, int dst, std::uint64_t bytes) {
  const Path p = route(src, dst);
  for (std::uint32_t i = 0; i < p.hops; ++i) {
    Link& l = *links_[p.link[i]];
    const SimTime t0 = sim_->now();
    l.res->acquire();
    const SimTime waited = sim_->now() - t0;
    const SimTime hold = l.per_byte.for_bytes(bytes);
    if (hold > SimTime::zero()) sim_->delay(hold);
    l.res->release();
    l.c_frames->inc();
    l.c_bytes->inc(bytes);
    l.c_busy_ns->inc(static_cast<std::uint64_t>(hold.ns()));
    l.c_wait_ns->inc(static_cast<std::uint64_t>(waited.ns()));
  }
}

double Topology::edge_uplink_bytes_per_sec(int e) const {
  switch (spec_.kind) {
    case TopologyKind::kSingleCrossbar:
      return 0.0;
    case TopologyKind::kEdgeCore: {
      double total = 0.0;
      for (int i = 0; i < spec_.uplinks_per_edge; ++i) {
        total += links_[edge_up_[static_cast<std::size_t>(e) *
                                 spec_.uplinks_per_edge + i]]
                     ->bytes_per_sec();
      }
      return total;
    }
    case TopologyKind::kFatTree: {
      // The pod's agg→core tier, attributed evenly across its k/2 edges.
      const int pod = e / half_k_;
      double total = 0.0;
      for (int a = 0; a < half_k_; ++a) {
        for (int leg = 0; leg < half_k_; ++leg) {
          total += links_[agg_up_[(static_cast<std::size_t>(pod) * half_k_ +
                                   a) * half_k_ + leg]]
                       ->bytes_per_sec();
        }
      }
      return total / half_k_;
    }
  }
  return 0.0;
}

}  // namespace sv::net
