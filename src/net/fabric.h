// The executed transport fabric: flow-controlled, staged message pipes.
//
// A Pipe is one unidirectional connection between two nodes, parameterized
// by a CalibrationProfile. Each message is split into pipeline frames that
// cross three stages:
//
//   sender thread --(window)--> [tx_host] --> wire proc [link_in @ dst]
//        --propagation--> proto proc [rx_proto @ dst] --> receive queue
//
// Stage occupancy uses the per-node shared resources from cluster.h, so
// concurrent connections contend realistically (the mechanism behind the
// paper's application-level results). Flow control returns window credit
// when the receiver-side protocol stage finishes a frame, modeling the TCP
// advertised window / SocketVIA credit scheme.
//
// Lifetime: the internal stage processes co-own the pipe state, so a Pipe
// handle may be destroyed at any simulated time; in-flight work finishes
// against the shared state and the processes wind down. Nodes and the
// Simulation must outlive message flow.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mem/payload.h"
#include "net/calibration.h"
#include "net/cluster.h"
#include "net/cost_model.h"
#include "sim/sync.h"

namespace sv::net {

struct Message {
  /// Logical size that drives all timing (payload need not be materialized).
  std::uint64_t bytes = 0;
  /// Per-pipe sequence number, assigned by send().
  std::uint64_t seq = 0;
  /// Application tag (e.g. DataCutter stream id or query id).
  std::uint64_t tag = 0;
  /// Timestamps for latency accounting.
  SimTime sent_at{};
  SimTime delivered_at{};
  /// Payload view (mem/payload.h): empty for pure timing messages,
  /// virtual or materialized otherwise. Shared by reference — the fabric
  /// and every transport move it without copying bytes (svlint SV008);
  /// copies happen only at modeled user↔kernel boundaries and are charged
  /// through mem::charge_copy.
  mem::Payload payload{};
  /// Buffer-region id for the selective-copy policy layer (DESIGN.md §14):
  /// messages sharing a `buffer` reuse the same registered region, which
  /// is what the pin-down RegCache keys on. 0 (default) means "anonymous
  /// one-shot buffer" — never a cache hit against another message.
  std::uint64_t buffer = 0;
  /// Optional application metadata (e.g. a DataCutter buffer descriptor).
  std::any meta{};
};

class Pipe {
 public:
  /// Creates a connected pipe from `src` to `dst`. Spawns the two internal
  /// stage processes. The Simulation must outlive all message flow.
  Pipe(sim::Simulation* sim, Node* src, Node* dst, CalibrationProfile profile,
       std::string name);
  ~Pipe();

  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  /// Blocking send (call from a simulated process on the source node's
  /// side). Blocks while the flow-control window is exhausted, then spends
  /// the sender-host time before returning (the blocking-socket model the
  /// paper's applications use).
  void send(Message m);

  /// Timed send: like send(), but a wait on the flow-control window gives
  /// up after `timeout` (<= 0 = wait forever) with ErrorCode::kTimeout.
  /// Frames already admitted stay in flight, so a timed-out pipe must be
  /// treated as failed by the caller.
  [[nodiscard]] Result<void> send_for(Message m, SimTime timeout);

  /// Blocking receive; nullopt after close() once drained.
  std::optional<Message> recv();
  /// Timed receive; ok(nullopt) means closed-and-drained, kTimeout means
  /// nothing was deliverable within `timeout` (<= 0 = wait forever).
  [[nodiscard]] Result<std::optional<Message>> recv_for(SimTime timeout);
  /// Non-blocking receive.
  std::optional<Message> try_recv();
  /// Number of fully-delivered messages waiting in the receive queue.
  [[nodiscard]] std::size_t pending() const;

  /// Closes the sending side; in-flight messages still deliver, then
  /// receivers see end-of-stream.
  void close();
  [[nodiscard]] bool closed() const;

  [[nodiscard]] const CostModel& model() const;
  [[nodiscard]] Node& src() const;
  [[nodiscard]] Node& dst() const;
  [[nodiscard]] const std::string& name() const;

  /// Totals for reporting.
  [[nodiscard]] std::uint64_t messages_sent() const;
  [[nodiscard]] std::uint64_t bytes_sent() const;
  /// Frames internally re-sent after fault-injected wire loss. The fast
  /// fabric stays reliable and in-order: a lost frame costs the link's
  /// recovery_delay plus a second wire crossing (see net/fault.h).
  [[nodiscard]] std::uint64_t frames_retransmitted() const;

 private:
  struct Frame {
    std::uint64_t bytes = 0;
    bool first = false;
    bool last = false;
    bool eof = false;
    Message msg;  // populated on the last frame of each message
  };

  /// All mutable pipe state, co-owned by the stage processes so the Pipe
  /// handle can be destroyed while work is still in flight.
  struct State : std::enable_shared_from_this<State> {
    State(sim::Simulation* sim_in, Node* src_in, Node* dst_in,
          CalibrationProfile profile_in, std::string name_in);

    [[nodiscard]] SimTime sender_frame_time(const Frame& f) const;
    [[nodiscard]] SimTime recv_frame_time(const Frame& f) const;
    void wire_loop();
    void proto_loop();

    sim::Simulation* sim;
    Node* src;
    Node* dst;
    CalibrationProfile profile;
    CostModel model;
    std::string name;
    /// Switch fabric between src and dst (nullptr = single crossbar). The
    /// wire stage traverses the routed path before the destination's
    /// link_in, and `fabric_latency` (path hops * hop latency, fixed per
    /// pipe since routing is deterministic) extends propagation.
    Topology* topo = nullptr;
    SimTime fabric_latency{};

    std::uint64_t next_seq = 0;
    bool closed = false;

    // Registry-backed statistics (bound in the constructor): per-pipe
    // totals under `{pipe=<name>#<serial>}` plus per-link aggregates
    // shared by every pipe crossing the same (src, dst) link.
    obs::Counter* c_msgs_sent;
    obs::Counter* c_bytes_sent;
    obs::Counter* c_frames_retx;
    obs::Counter* c_frames_retx_total;
    obs::Counter* c_frames_link;
    obs::Counter* c_frame_bytes_sent_link;
    obs::Counter* c_frame_bytes_recv_link;
    obs::Counter* c_wire_ns_link;
    obs::Gauge* g_in_flight_link;
    obs::Counter* c_msgs_recv_total;
    obs::Histogram* h_msg_latency;

    std::uint64_t in_flight_bytes = 0;
    sim::WaitQueue window_waiters;

    sim::Channel<Frame> to_wire;
    sim::Channel<Frame> to_proto;
    sim::Channel<Message> delivered;
  };

  std::shared_ptr<State> st_;
};

}  // namespace sv::net
