#include "net/cluster.h"

namespace sv::net {

Node::Node(sim::Simulation* sim, int id, const NodeConfig& cfg)
    : sim_(sim),
      id_(id),
      cfg_(cfg),
      name_("node" + std::to_string(id)),
      cpu_(sim, cfg.cpus, name_ + ".cpu"),
      tx_host_(sim, 1, name_ + ".tx"),
      link_in_(sim, 1, name_ + ".link_in"),
      rx_proto_(sim, 1, name_ + ".rx_proto") {}

void Node::compute(SimTime work) {
  cpu_.use(work * cfg_.slow_factor);
}

Cluster::Cluster(sim::Simulation* sim, int node_count, const NodeConfig& cfg)
    : sim_(sim) {
  nodes_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, i, cfg));
  }
}

}  // namespace sv::net
