#include "net/cluster.h"

#include "common/check.h"

namespace sv::net {

Node::Node(sim::Simulation* sim, int id, const NodeConfig& cfg)
    : sim_(sim),
      id_(id),
      cfg_(cfg),
      name_("node" + std::to_string(id)),
      cpu_(sim, cfg.cpus, name_ + ".cpu"),
      tx_host_(sim, 1, name_ + ".tx"),
      link_in_(sim, 1, name_ + ".link_in"),
      rx_proto_(sim, 1, name_ + ".rx_proto") {}

void Node::compute(SimTime work) {
  std::int64_t factor = cfg_.slow_factor;
  if (injector_ != nullptr) {
    factor *= injector_->compute_factor(id_, sim_->now());
  }
  cpu_.use(work * factor);
}

Cluster::Cluster(sim::Simulation* sim, int node_count, const NodeConfig& cfg,
                 const TopologySpec& topo)
    : sim_(sim) {
  nodes_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, i, cfg));
  }
  if (topo.kind != TopologyKind::kSingleCrossbar) {
    topology_ = std::make_unique<Topology>(sim, topo, node_count);
    for (auto& n : nodes_) {
      n->set_topology(topology_.get());
    }
  }
}

void Cluster::install_faults(const FaultPlan& plan, std::uint64_t seed) {
  SV_ASSERT(injector_ == nullptr, "Cluster::install_faults called twice");
  if (!plan.enabled()) return;
  injector_ = std::make_unique<FaultInjector>(plan, seed,
                                              &sim_->obs().registry);
  for (auto& n : nodes_) {
    n->set_fault_injector(injector_.get());
  }
  for (const NodeFault& nf : plan.nodes) {
    if (!nf.is_stall()) continue;  // slowdowns apply via Node::compute
    SV_ASSERT(nf.node >= 0 &&
                  static_cast<std::size_t>(nf.node) < nodes_.size(),
              "FaultPlan stall window names an unknown node");
    Node& node = *nodes_[static_cast<std::size_t>(nf.node)];
    // One holder process per resource: each grabs every capacity unit for
    // the window, so compute, sends, inbound DMA and protocol processing
    // all stall — exactly what a hung host looks like to its peers.
    sim::Resource* resources[] = {&node.cpu(), &node.tx_host(),
                                  &node.link_in(), &node.rx_proto()};
    for (sim::Resource* res : resources) {
      sim_->spawn(
          node.name() + ".stall", [sim = sim_, nf, res] {
            if (nf.start > sim->now()) sim->delay(nf.start - sim->now());
            const std::int64_t units = res->capacity();
            for (std::int64_t k = 0; k < units; ++k) res->acquire();
            sim->delay(nf.duration);
            for (std::int64_t k = 0; k < units; ++k) res->release();
          });
    }
  }
}

}  // namespace sv::net
