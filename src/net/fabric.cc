#include "net/fabric.h"

#include <algorithm>
#include <stdexcept>

namespace sv::net {

Pipe::State::State(sim::Simulation* sim_in, Node* src_in, Node* dst_in,
                   CalibrationProfile profile_in, std::string name_in)
    : sim(sim_in),
      src(src_in),
      dst(dst_in),
      profile(std::move(profile_in)),
      model(profile),
      name(std::move(name_in)),
      window_waiters(sim_in, name + ".window"),
      to_wire(sim_in, 0, name + ".wire_q"),
      to_proto(sim_in, 0, name + ".proto_q"),
      delivered(sim_in, 0, name + ".delivered_q") {
  topo = src->topology();
  if (topo != nullptr) {
    fabric_latency = topo->path_latency(src->id(), dst->id());
  }
  obs::Registry& reg = sim->obs().registry;
  // Pipe names are caller-chosen and may repeat; a creation serial keeps
  // per-pipe metric names unique (creation order is deterministic).
  auto& serial = reg.counter("fabric.pipes");
  serial.inc();
  const std::string pl =
      "{pipe=" + name + "#" + std::to_string(serial.value()) + "}";
  const std::string ll = "{link=" + std::to_string(src->id()) + "->" +
                         std::to_string(dst->id()) + "}";
  c_msgs_sent = &reg.counter("fabric.messages_sent" + pl);
  c_bytes_sent = &reg.counter("fabric.bytes_sent" + pl);
  c_frames_retx = &reg.counter("fabric.frames_retransmitted" + pl);
  c_frames_retx_total = &reg.counter("fabric.frames_retransmitted");
  c_frames_link = &reg.counter("fabric.frames" + ll);
  c_frame_bytes_sent_link = &reg.counter("fabric.frame_bytes_sent" + ll);
  c_frame_bytes_recv_link = &reg.counter("fabric.frame_bytes_received" + ll);
  c_wire_ns_link = &reg.counter("fabric.wire_ns" + ll);
  g_in_flight_link = &reg.gauge("fabric.in_flight_bytes" + ll);
  c_msgs_recv_total = &reg.counter("fabric.messages_received");
  h_msg_latency = &reg.histogram("fabric.msg_latency_ns");
}

Pipe::Pipe(sim::Simulation* sim, Node* src, Node* dst,
           CalibrationProfile profile, std::string name)
    : st_(std::make_shared<State>(sim, src, dst, std::move(profile),
                                  std::move(name))) {
  sim->spawn(st_->name + ".wire", [st = st_] { st->wire_loop(); });
  sim->spawn(st_->name + ".proto", [st = st_] { st->proto_loop(); });
}

Pipe::~Pipe() {
  // Stop intake and wake any blocked receiver; the stage processes co-own
  // the state and wind down on their own. to_proto stays open so in-flight
  // propagation events can still land safely.
  st_->closed = true;
  st_->to_wire.close();
  st_->delivered.close();
}

SimTime Pipe::State::sender_frame_time(const Frame& f) const {
  SimTime t = profile.send_per_seg *
                  static_cast<std::int64_t>(model.segments(f.bytes)) +
              profile.send_per_byte.for_bytes(f.bytes);
  if (f.first) t += profile.send_fixed;  // per-message cost, once
  return t;
}

SimTime Pipe::State::recv_frame_time(const Frame& f) const {
  SimTime t = profile.recv_per_seg *
                  static_cast<std::int64_t>(model.segments(f.bytes)) +
              profile.recv_per_byte.for_bytes(f.bytes);
  if (f.last) t += profile.recv_fixed;  // delivery-to-application cost
  return t;
}

void Pipe::send(Message m) {
  // timeout <= 0 waits forever, so the result is always ok.
  (void)send_for(std::move(m), SimTime::zero());
}

Result<void> Pipe::send_for(Message m, SimTime timeout) {
  State& st = *st_;
  if (st.closed) {
    throw std::logic_error("Pipe[" + st.name + "]::send after close");
  }
  const bool timed = timeout > SimTime::zero();
  const SimTime deadline = st.sim->now() + timeout;
  m.seq = st.next_seq++;
  m.sent_at = st.sim->now();
  st.c_msgs_sent->inc();
  st.c_bytes_sent->inc(m.bytes);

  const std::uint64_t frame_cap =
      std::max<std::uint64_t>(1, st.profile.pipeline_frame_bytes);
  std::uint64_t remaining = m.bytes;
  bool first = true;
  while (true) {
    const std::uint64_t flen = std::min(remaining, frame_cap);
    remaining -= flen;
    const bool last = remaining == 0;
    // Flow control: block until this frame fits in the window (a frame is
    // always admitted when nothing is in flight, guaranteeing progress).
    while (st.in_flight_bytes > 0 &&
           st.in_flight_bytes + flen > st.profile.window_bytes) {
      if (!timed) {
        st.window_waiters.wait();
        continue;
      }
      const SimTime left = deadline - st.sim->now();
      if (left > SimTime::zero() && st.window_waiters.wait_for(left)) {
        continue;
      }
      if (st.in_flight_bytes > 0 &&
          st.in_flight_bytes + flen > st.profile.window_bytes) {
        return Error::timeout("Pipe[" + st.name +
                              "]: send timed out with the flow-control "
                              "window closed (receiver stalled?)");
      }
    }
    st.in_flight_bytes += flen;
    st.g_in_flight_link->add(static_cast<std::int64_t>(flen));
    st.c_frames_link->inc();
    st.c_frame_bytes_sent_link->inc(flen);
    Frame f;
    f.bytes = flen;
    f.first = first;
    f.last = last;
    if (last) f.msg = std::move(m);
    // Sender-host stage, serialized with other sends from this node.
    st.src->tx_host().use(st.sender_frame_time(f));
    st.to_wire.send(std::move(f));
    if (last) break;
    first = false;
  }
  return Result<void>::success();
}

void Pipe::close() {
  State& st = *st_;
  if (st.closed) return;
  st.closed = true;
  Frame f;
  f.eof = true;
  st.to_wire.send(std::move(f));
}

std::optional<Message> Pipe::recv() { return st_->delivered.recv(); }

Result<std::optional<Message>> Pipe::recv_for(SimTime timeout) {
  return st_->delivered.recv_for(timeout);
}

std::optional<Message> Pipe::try_recv() { return st_->delivered.try_recv(); }

std::size_t Pipe::pending() const { return st_->delivered.size(); }

bool Pipe::closed() const { return st_->closed; }

const CostModel& Pipe::model() const { return st_->model; }

Node& Pipe::src() const { return *st_->src; }

Node& Pipe::dst() const { return *st_->dst; }

const std::string& Pipe::name() const { return st_->name; }

std::uint64_t Pipe::messages_sent() const {
  return st_->c_msgs_sent->value();
}

std::uint64_t Pipe::bytes_sent() const { return st_->c_bytes_sent->value(); }

std::uint64_t Pipe::frames_retransmitted() const {
  return st_->c_frames_retx->value();
}

void Pipe::State::wire_loop() {
  while (auto f = to_wire.recv()) {
    const bool eof = f->eof;
    // Inbound link / DMA occupancy at the destination (EOF is free).
    if (!eof) {
      const SimTime wire_start = sim->now();
      // Cross the switch fabric first (queueing on shared uplinks), then
      // occupy the destination's inbound link / DMA path.
      if (topo != nullptr) topo->traverse(src->id(), dst->id(), f->bytes);
      dst->link_in().use(model.wire_time(f->bytes));
      if (FaultInjector* inj = src->fault_injector()) {
        FaultDecision d = inj->on_frame(src->id(), dst->id());
        while (d.drop) {
          // Lost on the wire. The fast fabric models the transport *after*
          // recovery, so charge the recovery pause plus a full re-crossing
          // and keep delivery reliable and in-order.
          c_frames_retx->inc();
          c_frames_retx_total->inc();
          sim->obs().tracer.instant(sim->now(), dst->id(), "fabric", "retx",
                                    f->bytes);
          sim->delay(d.recovery_delay);
          if (topo != nullptr) topo->traverse(src->id(), dst->id(), f->bytes);
          dst->link_in().use(model.wire_time(f->bytes));
          d = inj->on_frame(src->id(), dst->id());
        }
        // Jitter is occupancy on this stage (not added propagation) so
        // frames cannot reorder; the pipe's in-order contract holds.
        if (d.extra_delay > SimTime::zero()) sim->delay(d.extra_delay);
      }
      const SimTime wire_end = sim->now();
      c_wire_ns_link->inc(static_cast<std::uint64_t>(
          (wire_end - wire_start).ns()));
      sim->obs().tracer.span(wire_start, wire_end, dst->id(), "fabric",
                             "wire", f->bytes);
    }
    // Propagation is latency, not occupancy: hand off without blocking this
    // stage so back-to-back frames overlap their flight time. EOF takes the
    // same path so it cannot overtake the final data frame. to_proto is
    // unbounded, so the event-context send cannot block. The event co-owns
    // the state via shared_ptr (safe across Pipe destruction).
    auto shared = std::make_shared<Frame>(std::move(*f));
    sim->schedule(profile.propagation + fabric_latency,
                  [self = shared_from_this(), shared] {
                    self->to_proto.send(std::move(*shared));
                  });
    if (eof) break;
  }
}

void Pipe::State::proto_loop() {
  while (auto f = to_proto.recv()) {
    if (f->eof) {
      if (!delivered.closed()) delivered.close();
      break;
    }
    // Receiver-side protocol processing (the kernel-TCP bottleneck).
    const SimTime rx_start = sim->now();
    dst->rx_proto().use(recv_frame_time(*f));
    sim->obs().tracer.span(rx_start, sim->now(), dst->id(), "fabric",
                           "rx_proto", f->bytes);
    c_frame_bytes_recv_link->inc(f->bytes);
    // Return window credit.
    in_flight_bytes -= f->bytes;
    g_in_flight_link->add(-static_cast<std::int64_t>(f->bytes));
    window_waiters.notify_all();
    if (f->last) {
      f->msg.delivered_at = sim->now();
      c_msgs_recv_total->inc();
      h_msg_latency->observe((f->msg.delivered_at - f->msg.sent_at).ns());
      if (!delivered.closed()) {
        delivered.send(std::move(f->msg));
      }
    }
  }
}

}  // namespace sv::net
