#include "datacutter/group.h"

#include <set>
#include <stdexcept>

namespace sv::dc {

const char* policy_name(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kRoundRobin: return "RR";
    case SchedPolicy::kDemandDriven: return "DD";
  }
  return "?";
}

FilterGroup& FilterGroup::add_filter(
    std::string name, std::function<std::unique_ptr<Filter>()> make,
    std::vector<std::size_t> placement) {
  filters_.push_back(
      FilterSpec{std::move(name), std::move(make), std::move(placement)});
  return *this;
}

FilterGroup& FilterGroup::add_stream(std::string from, std::string to,
                                     SchedPolicy policy) {
  streams_.push_back(StreamSpec{std::move(from), std::move(to), policy});
  return *this;
}

const FilterSpec& FilterGroup::filter(const std::string& name) const {
  for (const auto& f : filters_) {
    if (f.name == name) return f;
  }
  throw std::invalid_argument("FilterGroup: no filter named '" + name + "'");
}

bool FilterGroup::has_filter(const std::string& name) const {
  for (const auto& f : filters_) {
    if (f.name == name) return true;
  }
  return false;
}

std::vector<std::size_t> FilterGroup::outputs_of(
    const std::string& name) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].from == name) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> FilterGroup::inputs_of(
    const std::string& name) const {
  std::vector<std::size_t> in;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].to == name) in.push_back(i);
  }
  return in;
}

void FilterGroup::validate() const {
  std::set<std::string> names;
  for (const auto& f : filters_) {
    if (!names.insert(f.name).second) {
      throw std::invalid_argument("FilterGroup: duplicate filter '" + f.name +
                                  "'");
    }
    if (f.placement.empty()) {
      throw std::invalid_argument("FilterGroup: filter '" + f.name +
                                  "' has no transparent copies");
    }
    if (!f.make) {
      throw std::invalid_argument("FilterGroup: filter '" + f.name +
                                  "' has no factory");
    }
  }
  for (const auto& s : streams_) {
    if (names.count(s.from) == 0) {
      throw std::invalid_argument("FilterGroup: stream source '" + s.from +
                                  "' does not exist");
    }
    if (names.count(s.to) == 0) {
      throw std::invalid_argument("FilterGroup: stream sink '" + s.to +
                                  "' does not exist");
    }
    if (s.from == s.to) {
      throw std::invalid_argument("FilterGroup: self-stream on '" + s.from +
                                  "'");
    }
  }
}

}  // namespace sv::dc
