// The DataCutter runtime: instantiates a filter group onto the simulated
// cluster, connects transparent copies with sockets, runs each copy as a
// simulated process, and implements the stream protocol:
//
//   - data buffers, end-of-work markers (one per UOW per producer copy),
//     and stream close travel in order on each point-to-point connection;
//   - a consumer's read() returns nullopt when *all* producer copies have
//     marked the current UOW done;
//   - Round-Robin or Demand-Driven distribution between consumer copies;
//     DD consumers acknowledge each buffer when they begin processing it,
//     and producers pick the copy with the fewest unacknowledged buffers
//     (Section 4.1 of the paper).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "datacutter/group.h"
#include "sockets/factory.h"

namespace sv::dc {

struct RuntimeOptions {
  net::Transport transport = net::Transport::kSocketVia;
  /// Per-buffer runtime cost at the producer (header build, scheduling).
  SimTime write_overhead = SimTime::microseconds(1);
  /// Per-buffer runtime cost at the consumer (header parse, dispatch).
  SimTime read_overhead = SimTime::microseconds(1);
  /// Wire size of end-of-work markers and DD acknowledgments.
  std::uint64_t marker_bytes = 16;
  std::uint64_t ack_bytes = 16;
  /// Demand-driven cap: a producer blocks rather than exceed this many
  /// unacknowledged buffers at every consumer (DataCutter's per-stream
  /// buffer pool). 0 = unbounded.
  std::int64_t dd_max_unacked = 4;
  /// I/O deadline for the runtime's blocking paths (stream writes, DD ack
  /// waits, acks/markers, and the filter read path). 0 = wait forever (the
  /// historical behaviour). With a nonzero deadline, a peer that stops
  /// making progress — e.g. a node stalled by a FaultPlan — surfaces as a
  /// thrown runtime error in the stuck filter process (rethrown by
  /// Simulation::run) instead of a silent hang; pair with
  /// Runtime::wait_completion_for for a Result at the application level.
  SimTime io_timeout = SimTime::zero();
};

/// Emitted when a sink filter copy completes a unit of work.
struct UowCompletion {
  std::uint64_t uow_id = 0;
  std::string filter;
  std::size_t copy = 0;
  SimTime at;
};

class Runtime {
 public:
  Runtime(sim::Simulation* sim, net::Cluster* cluster,
          sockets::SocketFactory* factory, FilterGroup group,
          RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Creates connections and spawns all filter-copy processes. Call once,
  /// before (or at) simulation start.
  void start();

  /// Enqueues a unit of work; every copy of every source filter receives
  /// it. Callable from processes or from plain code before run().
  void submit(Uow uow);
  /// Signals that no further units of work will arrive; streams drain and
  /// filters finalize.
  void close_input();

  /// Blocking wait (from a process) for the next sink-side completion.
  std::optional<UowCompletion> wait_completion();

  /// Timed wait: ErrorCode::kTimeout if no completion lands within
  /// `timeout` (<= 0 = wait forever), ErrorCode::kClosed after the
  /// completion stream ends. The clean way to bound an experiment that
  /// might be wedged on a faulty cluster.
  [[nodiscard]] Result<UowCompletion> wait_completion_for(SimTime timeout);

  /// Number of buffers each producer copy sent to each consumer copy on
  /// stream `stream_idx` (scheduling diagnostics).
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> distribution(
      std::size_t stream_idx) const;

  [[nodiscard]] const FilterGroup& group() const { return group_; }
  [[nodiscard]] const RuntimeOptions& options() const;

 private:
  class ContextImpl;
  struct CopyState;

  /// State shared between the Runtime handle and every spawned process, so
  /// the handle may be destroyed while the simulation still runs.
  struct Core;

  static void run_copy(const std::shared_ptr<CopyState>& cs);

  sim::Simulation* sim_;
  net::Cluster* cluster_;
  sockets::SocketFactory* factory_;
  FilterGroup group_;
  bool started_ = false;

  std::shared_ptr<Core> core_;
  std::vector<std::shared_ptr<CopyState>> copies_;
  // copies_ entries of source-filter copies (receive submitted UOWs).
  std::vector<std::shared_ptr<CopyState>> source_copies_;
};

}  // namespace sv::dc
