#include "datacutter/local_socket.h"

namespace sv::dc {

sockets::SocketPair LocalSocket::make_pair(sim::Simulation* sim,
                                           net::Node* node,
                                           const std::string& name) {
  auto ab = std::make_shared<Queue>(sim, 0, name + ".ab");
  auto ba = std::make_shared<Queue>(sim, 0, name + ".ba");
  std::unique_ptr<sockets::SvSocket> a(new LocalSocket(sim, node, ab, ba));
  std::unique_ptr<sockets::SvSocket> b(new LocalSocket(sim, node, ba, ab));
  return {std::move(a), std::move(b)};
}

void LocalSocket::send(net::Message m) {
  stats_.messages_sent++;
  stats_.bytes_sent += m.bytes;
  m.sent_at = sim_->now();
  sim_->delay(kHandoffCost);
  m.delivered_at = sim_->now();
  out_->send(std::move(m));
}

std::optional<net::Message> LocalSocket::recv() {
  auto m = in_->recv();
  if (m) {
    stats_.messages_received++;
    stats_.bytes_received += m->bytes;
  }
  return m;
}

std::optional<net::Message> LocalSocket::try_recv() {
  auto m = in_->try_recv();
  if (m) {
    stats_.messages_received++;
    stats_.bytes_received += m->bytes;
  }
  return m;
}

void LocalSocket::close_send() {
  if (!out_->closed()) out_->close();
}

}  // namespace sv::dc
