#include "datacutter/local_socket.h"

namespace sv::dc {

sockets::SocketPair LocalSocket::make_pair(sim::Simulation* sim,
                                           net::Node* node,
                                           const std::string& name) {
  auto ab = std::make_shared<Queue>(sim, 0, name + ".ab");
  auto ba = std::make_shared<Queue>(sim, 0, name + ".ba");
  std::unique_ptr<sockets::SvSocket> a(new LocalSocket(sim, node, ab, ba));
  std::unique_ptr<sockets::SvSocket> b(new LocalSocket(sim, node, ba, ab));
  return {std::move(a), std::move(b)};
}

void LocalSocket::send(net::Message m) {
  const std::uint64_t bytes = m.bytes;
  const SimTime start = obs_now();
  m.sent_at = sim_->now();
  sim_->delay(kHandoffCost);
  m.delivered_at = sim_->now();
  out_->send(std::move(m));
  note_sent(bytes);
  obs_span(start, "send", bytes);
}

std::optional<net::Message> LocalSocket::recv() {
  const SimTime start = obs_now();
  auto m = in_->recv();
  if (m) {
    note_received(m->bytes);
    obs_span(start, "recv", m->bytes);
  }
  return m;
}

std::optional<net::Message> LocalSocket::try_recv() {
  auto m = in_->try_recv();
  if (m) {
    note_received(m->bytes);
  }
  return m;
}

sv::Result<std::optional<net::Message>> LocalSocket::recv_for(
    SimTime timeout) {
  const SimTime start = obs_now();
  auto r = in_->recv_for(timeout);
  if (r.ok() && r.value()) {
    note_received(r.value()->bytes);
    obs_span(start, "recv", r.value()->bytes);
  } else if (!r.ok()) {
    note_timeout("timeout.recv");
  }
  return r;
}

sv::Result<void> LocalSocket::send_for(net::Message m, SimTime /*timeout*/) {
  // The hand-off queue is unbounded: a same-host send never blocks on the
  // peer, so the timeout cannot trip.
  send(std::move(m));
  return sv::Result<void>::success();
}

void LocalSocket::close_send() {
  if (!out_->closed()) out_->close();
}

}  // namespace sv::dc
