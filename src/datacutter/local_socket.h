// Same-host stream endpoint: filters placed on one node exchange buffers
// through memory, paying only a small runtime overhead per message.
#pragma once

#include <memory>

#include "sim/sync.h"
#include "sockets/socket.h"

namespace sv::dc {

class LocalSocket final : public sockets::SvSocket {
 public:
  /// Builds a connected same-node pair.
  static sockets::SocketPair make_pair(sim::Simulation* sim, net::Node* node,
                                       const std::string& name);

  void send(net::Message m) override;
  std::optional<net::Message> recv() override;
  std::optional<net::Message> try_recv() override;
  [[nodiscard]] sv::Result<std::optional<net::Message>> recv_for(SimTime timeout) override;
  [[nodiscard]] sv::Result<void> send_for(net::Message m, SimTime timeout) override;
  void close_send() override;

  [[nodiscard]] net::Transport transport() const override {
    // Local hand-off; reported as SocketVIA for uniformity but costs only
    // the hand-off overhead.
    return net::Transport::kSocketVia;
  }
  [[nodiscard]] net::Node& local_node() const override { return *node_; }

  /// Per-message hand-off cost between threads on one host.
  static constexpr SimTime kHandoffCost = SimTime::microseconds(2);

 private:
  using Queue = sim::Channel<net::Message>;

  LocalSocket(sim::Simulation* sim, net::Node* node,
              std::shared_ptr<Queue> out, std::shared_ptr<Queue> in)
      : sim_(sim), node_(node), out_(std::move(out)), in_(std::move(in)) {
    init_obs(sim_, node_->id(), node_->id(), "local");
  }

  sim::Simulation* sim_;
  net::Node* node_;
  std::shared_ptr<Queue> out_;
  std::shared_ptr<Queue> in_;
};

}  // namespace sv::dc
