// DataBuffer: the unit of data flowing on DataCutter logical streams.
#pragma once

#include <any>
#include <cstdint>
#include <memory>

#include "common/check.h"
#include "common/units.h"
#include "mem/payload.h"

namespace sv::dc {

struct DataBuffer {
  /// Logical payload size; drives all transport and computation timing.
  std::uint64_t bytes = 0;
  /// Unit-of-work this buffer belongs to.
  std::uint64_t uow_id = 0;
  /// Application tag (e.g. chunk index within a query).
  std::uint64_t tag = 0;
  /// Optional application metadata.
  std::any meta{};
  /// Payload view (mem/payload.h): empty for timing-only buffers, shared
  /// by reference otherwise — the runtime and transports never copy it;
  /// sub-chunks are zero-copy slices of the parent's payload.
  mem::Payload payload{};
  /// Stamped by the runtime when the buffer is first written to a stream.
  SimTime created_at{};

  /// True when real payload bytes are attached (timing-only buffers carry
  /// none; virtual payloads flow through transports but hold no bytes).
  [[nodiscard]] bool materialized() const { return payload.materialized(); }

  /// Bounds-guarded payload access: returns a pointer to `len` contiguous
  /// bytes at `offset`. Reading past the written extent — beyond the
  /// materialized payload or beyond the buffer's logical size — is a
  /// contract violation (SV_ASSERT), not UB. Overflow-safe: `offset + len`
  /// is never formed, so adversarial offsets cannot wrap the check.
  [[nodiscard]] const std::byte* read_at(std::uint64_t offset,
                                         std::uint64_t len) const {
    SV_ASSERT(materialized(),
              "DataBuffer: payload read on a non-materialized buffer");
    SV_ASSERT(len <= bytes && offset <= bytes - len,
              "DataBuffer: read past logical extent");
    // Payload accessors re-check against the materialized extent with the
    // same overflow-safe form.
    return payload.contiguous_at(offset, len);
  }

  /// Single-byte guarded read.
  [[nodiscard]] std::byte read_byte(std::uint64_t i) const {
    return *read_at(i, 1);
  }
};

/// A unit of work: one application query handled by the filter group.
struct Uow {
  std::uint64_t id = 0;
  std::any work{};
};

}  // namespace sv::dc
