// DataBuffer: the unit of data flowing on DataCutter logical streams.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace sv::dc {

struct DataBuffer {
  /// Logical payload size; drives all transport and computation timing.
  std::uint64_t bytes = 0;
  /// Unit-of-work this buffer belongs to.
  std::uint64_t uow_id = 0;
  /// Application tag (e.g. chunk index within a query).
  std::uint64_t tag = 0;
  /// Optional application metadata.
  std::any meta{};
  /// Optional real payload (shared; the runtime never copies it).
  std::shared_ptr<const std::vector<std::byte>> payload{};
  /// Stamped by the runtime when the buffer is first written to a stream.
  SimTime created_at{};

  /// True when a real payload is attached (timing-only buffers carry none).
  [[nodiscard]] bool materialized() const { return payload != nullptr; }

  /// Bounds-guarded payload access: returns a pointer to `len` bytes at
  /// `offset`. Reading past the written extent — beyond the materialized
  /// payload or beyond the buffer's logical size — is a contract violation
  /// (SV_ASSERT), not UB.
  [[nodiscard]] const std::byte* read_at(std::uint64_t offset,
                                         std::uint64_t len) const {
    SV_ASSERT(payload != nullptr,
              "DataBuffer: payload read on a non-materialized buffer");
    SV_ASSERT(offset + len <= bytes,
              "DataBuffer: read past logical extent");
    SV_ASSERT(offset + len <= payload->size(),
              "DataBuffer: read past written payload");
    return payload->data() + offset;
  }

  /// Single-byte guarded read.
  [[nodiscard]] std::byte read_byte(std::uint64_t i) const {
    return *read_at(i, 1);
  }
};

/// A unit of work: one application query handled by the filter group.
struct Uow {
  std::uint64_t id = 0;
  std::any work{};
};

}  // namespace sv::dc
