// DataBuffer: the unit of data flowing on DataCutter logical streams.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"

namespace sv::dc {

struct DataBuffer {
  /// Logical payload size; drives all transport and computation timing.
  std::uint64_t bytes = 0;
  /// Unit-of-work this buffer belongs to.
  std::uint64_t uow_id = 0;
  /// Application tag (e.g. chunk index within a query).
  std::uint64_t tag = 0;
  /// Optional application metadata.
  std::any meta;
  /// Optional real payload (shared; the runtime never copies it).
  std::shared_ptr<const std::vector<std::byte>> payload;
  /// Stamped by the runtime when the buffer is first written to a stream.
  SimTime created_at;
};

/// A unit of work: one application query handled by the filter group.
struct Uow {
  std::uint64_t id = 0;
  std::any work;
};

}  // namespace sv::dc
