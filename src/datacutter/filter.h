// The DataCutter filter interface: init / process / finalize.
//
// A filter reads DataBuffers from its input streams and writes to its
// output streams; the runtime invokes process() once per unit of work.
// Transparent copies of a filter share the same logical streams; buffer
// distribution between copies is handled by the stream scheduler (RR/DD).
#pragma once

#include <cstddef>
#include <optional>

#include "common/units.h"
#include "datacutter/buffer.h"
#include "net/cluster.h"
#include "sim/simulation.h"

namespace sv::dc {

/// Per-copy runtime services available to filter code.
class FilterContext {
 public:
  virtual ~FilterContext() = default;

  /// Blocking read from input stream `input`. Returns nullopt at the end of
  /// the current unit of work (or end of stream; see at_end_of_stream()).
  virtual std::optional<DataBuffer> read(std::size_t input) = 0;
  std::optional<DataBuffer> read() { return read(0); }

  /// Writes a buffer to output stream `output`; the stream scheduler picks
  /// the consumer copy. Blocks under transport flow control.
  virtual void write(std::size_t output, DataBuffer buffer) = 0;
  void write(DataBuffer buffer) { write(0, std::move(buffer)); }

  /// Charges `work` of computation on this copy's node (subject to the
  /// node's CPU count and slow factor).
  virtual void compute(SimTime work) = 0;

  /// The unit of work currently being processed (valid in process()).
  [[nodiscard]] virtual const Uow& uow() const = 0;
  /// True once every producer has closed every input stream.
  [[nodiscard]] virtual bool at_end_of_stream() const = 0;

  [[nodiscard]] virtual std::size_t copy_index() const = 0;
  [[nodiscard]] virtual std::size_t input_count() const = 0;
  [[nodiscard]] virtual std::size_t output_count() const = 0;
  [[nodiscard]] virtual net::Node& node() const = 0;
  [[nodiscard]] virtual sim::Simulation& sim() const = 0;
};

class Filter {
 public:
  virtual ~Filter() = default;

  /// Called once when the copy is instantiated (allocate resources).
  virtual void init(FilterContext& ctx) { (void)ctx; }
  /// Called once per unit of work. Source filters (no inputs) generate and
  /// write buffers; other filters read until read() returns nullopt.
  virtual void process(FilterContext& ctx) = 0;
  /// Called once when the stream shuts down (release resources).
  virtual void finalize(FilterContext& ctx) { (void)ctx; }
};

}  // namespace sv::dc
