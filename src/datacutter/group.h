// Filter group description: filters, transparent-copy placement, streams.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "datacutter/filter.h"

namespace sv::dc {

/// Buffer distribution policy between transparent consumer copies.
enum class SchedPolicy { kRoundRobin, kDemandDriven };

[[nodiscard]] const char* policy_name(SchedPolicy p);

struct FilterSpec {
  std::string name;
  std::function<std::unique_ptr<Filter>()> make;
  /// One entry per transparent copy: the node index it is placed on.
  std::vector<std::size_t> placement;
};

struct StreamSpec {
  std::string from;
  std::string to;
  SchedPolicy policy = SchedPolicy::kDemandDriven;
};

class FilterGroup {
 public:
  /// Adds a filter with its transparent-copy placement.
  FilterGroup& add_filter(std::string name,
                          std::function<std::unique_ptr<Filter>()> make,
                          std::vector<std::size_t> placement);

  /// Adds a logical stream from filter `from` to filter `to`.
  FilterGroup& add_stream(std::string from, std::string to,
                          SchedPolicy policy = SchedPolicy::kDemandDriven);

  [[nodiscard]] const std::vector<FilterSpec>& filters() const {
    return filters_;
  }
  [[nodiscard]] const std::vector<StreamSpec>& streams() const {
    return streams_;
  }
  [[nodiscard]] const FilterSpec& filter(const std::string& name) const;
  [[nodiscard]] bool has_filter(const std::string& name) const;

  /// Output/input stream indices for a filter, in add order (these are the
  /// indices filter code passes to read()/write()).
  [[nodiscard]] std::vector<std::size_t> outputs_of(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::size_t> inputs_of(
      const std::string& name) const;

  /// Throws std::invalid_argument on dangling stream endpoints, duplicate
  /// filter names, or empty placements.
  void validate() const;

 private:
  std::vector<FilterSpec> filters_;
  std::vector<StreamSpec> streams_;
};

}  // namespace sv::dc
