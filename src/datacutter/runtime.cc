#include "datacutter/runtime.h"

#include <algorithm>
#include <stdexcept>

#include "datacutter/local_socket.h"

namespace sv::dc {
namespace {

constexpr std::uint64_t kKindData = 0;
constexpr std::uint64_t kKindMarker = 1;
constexpr std::uint64_t kKindAck = 2;

std::uint64_t encode_tag(std::uint64_t kind, std::uint64_t uow_id) {
  return kind | (uow_id << 8);
}
std::uint64_t tag_kind(std::uint64_t tag) { return tag & 0xff; }
std::uint64_t tag_uow(std::uint64_t tag) { return tag >> 8; }

}  // namespace

struct Runtime::Core {
  Core(sim::Simulation* sim_in, RuntimeOptions options_in)
      : sim(sim_in),
        options(options_in),
        completions(sim_in, 0, "dc.completions") {}
  sim::Simulation* sim;
  RuntimeOptions options;
  /// Metric-label prefix `r<serial>.` distinguishing this Runtime's copies
  /// from other Runtimes sharing the simulation registry.
  std::string obs_prefix;
  sim::Channel<UowCompletion> completions;
  /// Copies whose run loop has not finished yet; the last one out closes
  /// `completions` so timed waiters see kClosed rather than a timeout.
  std::size_t live_copies = 0;
  // distribution counters: [stream][producer copy][consumer copy]
  std::vector<std::vector<std::vector<std::uint64_t>>> distribution;
};

struct Runtime::CopyState {
  std::shared_ptr<Core> core;
  const FilterSpec* spec = nullptr;  // points into owned_group
  std::shared_ptr<const FilterGroup> owned_group;
  std::size_t copy = 0;
  net::Node* node = nullptr;
  std::unique_ptr<Filter> filter;
  std::unique_ptr<ContextImpl> ctx;
  std::unique_ptr<sim::Channel<Uow>> uow_queue;  // source copies only
  bool is_source = false;
  bool is_sink = false;

  /// `r<k>.<filter><copy>` — the {copy=...} label of this copy's metrics.
  std::string obs_label;
  obs::Counter* c_buffers_in = nullptr;
  obs::Counter* c_buffers_out = nullptr;
  /// Sim-time spent blocked on the fan-in queue waiting for upstream data.
  obs::Counter* c_blocked_ns = nullptr;
  /// Sim-time a DD producer spent stalled at the unacknowledged-buffer cap.
  obs::Counter* c_stall_ns = nullptr;

  struct OutPort {
    const StreamSpec* spec = nullptr;  // points into owned_group
    std::size_t stream_idx = 0;
    std::vector<std::unique_ptr<sockets::SvSocket>> socks;
    std::vector<std::int64_t> unacked;
    std::size_t rr_next = 0;
    std::unique_ptr<sim::WaitQueue> ack_wait;  // DD producers block here
    /// Total unacknowledged buffers across consumers (DD back-pressure
    /// depth; max_value() is the high-water mark).
    obs::Gauge* g_unacked = nullptr;
  };
  struct InPort {
    const StreamSpec* spec = nullptr;
    std::size_t stream_idx = 0;
    std::vector<std::unique_ptr<sockets::SvSocket>> socks;
    /// Fan-in item: endpoint index + message (nullopt = endpoint closed).
    struct Item {
      std::size_t ep;
      std::optional<net::Message> msg;
    };
    std::unique_ptr<sim::Channel<Item>> merged;
    /// Items received for a *future* UOW while this endpoint is done with
    /// the current one (nullopt entries are deferred close sentinels).
    std::vector<std::deque<std::optional<net::Message>>> pending;
    std::vector<bool> eow;
    std::vector<bool> closed;
    std::uint64_t markers_this_uow = 0;
    bool eos = false;
    /// Fan-in queue depth (messages landed but not yet read by the filter).
    obs::Gauge* g_queue_depth = nullptr;
  };
  std::vector<OutPort> outputs;
  std::vector<InPort> inputs;
};

class Runtime::ContextImpl final : public FilterContext {
 public:
  explicit ContextImpl(CopyState* cs) : cs_(cs), core_(cs->core.get()) {}

  std::optional<DataBuffer> read(std::size_t input) override {
    if (input >= cs_->inputs.size()) {
      throw std::out_of_range("FilterContext::read: no such input stream");
    }
    auto& port = cs_->inputs[input];
    while (true) {
      // 1. Serve buffered items of endpoints still active in this UOW.
      bool handled_control = false;
      for (std::size_t k = 0; k < port.pending.size(); ++k) {
        if (port.eow[k] || port.pending[k].empty()) continue;
        auto item = std::move(port.pending[k].front());
        port.pending[k].pop_front();
        if (!item) {
          port.closed[k] = true;
          port.eow[k] = true;
          handled_control = true;
          break;
        }
        if (auto buf = handle(port, k, std::move(*item))) return buf;
        handled_control = true;
        break;
      }
      if (handled_control) continue;

      // 2. All endpoints done with the current UOW?
      const bool all_done = std::all_of(port.eow.begin(), port.eow.end(),
                                        [](bool b) { return b; });
      if (all_done) {
        uow_real_ = port.markers_this_uow > 0;
        port.markers_this_uow = 0;
        bool pending_empty = true;
        for (const auto& q : port.pending) pending_empty &= q.empty();
        const bool all_closed = std::all_of(
            port.closed.begin(), port.closed.end(), [](bool b) { return b; });
        for (std::size_t k = 0; k < port.eow.size(); ++k) {
          port.eow[k] = port.closed[k];
        }
        if (all_closed && pending_empty) port.eos = true;
        return std::nullopt;
      }

      // 3. Block for the next fan-in item.
      const SimTime block_start = core_->sim->now();
      std::optional<CopyState::InPort::Item> item;
      if (core_->options.io_timeout > SimTime::zero()) {
        auto r = port.merged->recv_for(core_->options.io_timeout);
        if (!r.ok()) {
          throw std::runtime_error(copy_label() + ": " + r.error().message);
        }
        item = std::move(r.value());
      } else {
        item = port.merged->recv();
      }
      cs_->c_blocked_ns->inc(
          static_cast<std::uint64_t>((core_->sim->now() - block_start).ns()));
      if (!item) return std::nullopt;  // defensive: merged never closes
      if (item->msg) port.g_queue_depth->add(-1);
      if (!item->msg) {
        if (port.eow[item->ep]) {
          port.pending[item->ep].push_back(std::nullopt);
        } else {
          port.closed[item->ep] = true;
          port.eow[item->ep] = true;
        }
        continue;
      }
      if (port.eow[item->ep]) {
        // Belongs to a future UOW; defer in arrival order.
        port.pending[item->ep].push_back(std::move(*item->msg));
        continue;
      }
      if (auto buf = handle(port, item->ep, std::move(*item->msg))) {
        return buf;
      }
    }
  }

  void write(std::size_t output, DataBuffer buffer) override {
    if (output >= cs_->outputs.size()) {
      throw std::out_of_range("FilterContext::write: no such output stream");
    }
    auto& port = cs_->outputs[output];
    core_->sim->delay(core_->options.write_overhead);
    std::size_t target = 0;
    if (port.spec->policy == SchedPolicy::kRoundRobin) {
      target = port.rr_next++ % port.socks.size();
    } else {
      // Demand-driven: the copy with the fewest unacknowledged buffers;
      // block while every copy is at the outstanding-buffer cap.
      const SimTime stall_start = core_->sim->now();
      while (true) {
        target = 0;
        for (std::size_t c = 1; c < port.socks.size(); ++c) {
          if (port.unacked[c] < port.unacked[target]) target = c;
        }
        if (core_->options.dd_max_unacked <= 0 ||
            port.unacked[target] < core_->options.dd_max_unacked) {
          break;
        }
        // Every consumer copy is at the outstanding-buffer cap. With an
        // i/o deadline, a cluster-wide wedge (all consumers stalled)
        // surfaces as an error instead of blocking this copy forever.
        const SimTime io = core_->options.io_timeout;
        if (io > SimTime::zero()) {
          if (!port.ack_wait->wait_for(io) &&
              port.unacked[target] >= core_->options.dd_max_unacked) {
            throw std::runtime_error(
                copy_label() +
                ": demand-driven write timed out with every consumer at "
                "the unacknowledged-buffer cap");
          }
        } else {
          port.ack_wait->wait();
        }
      }
      cs_->c_stall_ns->inc(static_cast<std::uint64_t>(
          (core_->sim->now() - stall_start).ns()));
    }
    buffer.uow_id = current_uow_.id;
    buffer.created_at = core_->sim->now();
    net::Message msg;
    msg.bytes = buffer.bytes;
    msg.tag = encode_tag(kKindData, current_uow_.id);
    msg.payload = buffer.payload;
    msg.meta = std::move(buffer);
    timed_send(*port.socks[target], std::move(msg));
    ++port.unacked[target];
    port.g_unacked->add(1);
    cs_->c_buffers_out->inc();
    ++core_->distribution[port.stream_idx][cs_->copy][target];
  }

  void compute(SimTime work) override { cs_->node->compute(work); }

  [[nodiscard]] const Uow& uow() const override { return current_uow_; }

  [[nodiscard]] bool at_end_of_stream() const override {
    if (cs_->inputs.empty()) return false;
    return std::all_of(cs_->inputs.begin(), cs_->inputs.end(),
                       [](const auto& p) { return p.eos; });
  }

  [[nodiscard]] std::size_t copy_index() const override { return cs_->copy; }
  [[nodiscard]] std::size_t input_count() const override {
    return cs_->inputs.size();
  }
  [[nodiscard]] std::size_t output_count() const override {
    return cs_->outputs.size();
  }
  [[nodiscard]] net::Node& node() const override { return *cs_->node; }
  [[nodiscard]] sim::Simulation& sim() const override { return *core_->sim; }

  // --- runtime-internal ---
  void begin_uow(Uow uow_in) {
    current_uow_ = std::move(uow_in);
    uow_real_ = true;
  }
  void send_markers() {
    for (auto& port : cs_->outputs) {
      for (auto& sock : port.socks) {
        net::Message m;
        m.bytes = core_->options.marker_bytes;
        m.tag = encode_tag(kKindMarker, current_uow_.id);
        timed_send(*sock, std::move(m));
      }
    }
  }
  [[nodiscard]] bool last_uow_real() const { return uow_real_; }
  [[nodiscard]] std::uint64_t completed_uow_id() const {
    return current_uow_.id;
  }

 private:
  [[nodiscard]] std::string copy_label() const {
    return "DataCutter[" + cs_->spec->name + std::to_string(cs_->copy) + "]";
  }

  /// Send honouring RuntimeOptions::io_timeout; a timed-out transport
  /// (stalled peer) kills this filter process with a descriptive error
  /// rather than hanging it.
  void timed_send(sockets::SvSocket& sock, net::Message m) {
    auto r = sock.send_for(std::move(m), core_->options.io_timeout);
    if (!r.ok()) {
      throw std::runtime_error(copy_label() + ": " + r.error().message);
    }
  }

  std::optional<DataBuffer> handle(CopyState::InPort& port, std::size_t ep,
                                   net::Message msg) {
    const auto kind = tag_kind(msg.tag);
    const auto uow_id = tag_uow(msg.tag);
    if (kind == kKindMarker) {
      port.eow[ep] = true;
      ++port.markers_this_uow;
      current_uow_.id = uow_id;
      return std::nullopt;
    }
    if (kind != kKindData) {
      throw std::logic_error("Runtime: unexpected message kind on stream");
    }
    current_uow_.id = uow_id;
    cs_->c_buffers_in->inc();
    // DD: acknowledge when processing begins (Section 4.1).
    if (port.spec->policy == SchedPolicy::kDemandDriven) {
      net::Message ack;
      ack.bytes = core_->options.ack_bytes;
      ack.tag = encode_tag(kKindAck, uow_id);
      timed_send(*port.socks[ep], std::move(ack));
    }
    core_->sim->delay(core_->options.read_overhead);
    return std::any_cast<DataBuffer>(std::move(msg.meta));
  }

  CopyState* cs_;
  Core* core_;
  Uow current_uow_;
  bool uow_real_ = false;
};

Runtime::Runtime(sim::Simulation* sim, net::Cluster* cluster,
                 sockets::SocketFactory* factory, FilterGroup group,
                 RuntimeOptions options)
    : sim_(sim),
      cluster_(cluster),
      factory_(factory),
      group_(std::move(group)),
      core_(std::make_shared<Core>(sim, options)) {
  group_.validate();
  auto& serial = sim_->obs().registry.counter("dc.runtimes");
  serial.inc();
  core_->obs_prefix = "r" + std::to_string(serial.value()) + ".";
}

Runtime::~Runtime() = default;

const RuntimeOptions& Runtime::options() const { return core_->options; }

void Runtime::start() {
  if (started_) throw std::logic_error("Runtime::start called twice");
  started_ = true;

  // The spawned processes reference FilterSpec/StreamSpec objects; share
  // one immutable copy of the group so those references outlive `this`.
  auto shared_group = std::make_shared<const FilterGroup>(group_);

  // Create copy states.
  std::map<std::string, std::vector<std::shared_ptr<CopyState>>> by_filter;
  for (const auto& spec : shared_group->filters()) {
    const auto inputs = shared_group->inputs_of(spec.name);
    const auto outputs = shared_group->outputs_of(spec.name);
    for (std::size_t c = 0; c < spec.placement.size(); ++c) {
      auto cs = std::make_shared<CopyState>();
      cs->core = core_;
      cs->owned_group = shared_group;
      cs->spec = &spec;
      cs->copy = c;
      cs->node = &cluster_->node(spec.placement[c]);
      cs->filter = spec.make();
      cs->is_source = inputs.empty();
      cs->is_sink = outputs.empty();
      cs->obs_label = core_->obs_prefix + spec.name + std::to_string(c);
      auto& reg = sim_->obs().registry;
      cs->c_buffers_in =
          &reg.counter("dc.buffers_in{copy=" + cs->obs_label + "}");
      cs->c_buffers_out =
          &reg.counter("dc.buffers_out{copy=" + cs->obs_label + "}");
      cs->c_blocked_ns =
          &reg.counter("dc.blocked_ns{copy=" + cs->obs_label + "}");
      cs->c_stall_ns =
          &reg.counter("dc.stall_ns{copy=" + cs->obs_label + "}");
      if (cs->is_source) {
        cs->uow_queue = std::make_unique<sim::Channel<Uow>>(
            sim_, 0, spec.name + std::to_string(c) + ".uows");
        source_copies_.push_back(cs);
      }
      by_filter[spec.name].push_back(cs);
      copies_.push_back(std::move(cs));
    }
  }

  // Create stream connections and ports.
  core_->distribution.resize(shared_group->streams().size());
  for (std::size_t s = 0; s < shared_group->streams().size(); ++s) {
    const auto& stream = shared_group->streams()[s];
    auto& producers = by_filter[stream.from];
    auto& consumers = by_filter[stream.to];
    core_->distribution[s].assign(
        producers.size(), std::vector<std::uint64_t>(consumers.size(), 0));

    for (auto& p : producers) {
      CopyState::OutPort port;
      port.spec = &stream;
      port.stream_idx = s;
      port.socks.resize(consumers.size());
      port.unacked.assign(consumers.size(), 0);
      port.ack_wait = std::make_unique<sim::WaitQueue>(
          sim_, stream.from + std::to_string(p->copy) + ".acks" +
                    std::to_string(s));
      port.g_unacked = &sim_->obs().registry.gauge(
          "dc.unacked{port=" + p->obs_label + ".out" + std::to_string(s) +
          "}");
      p->outputs.push_back(std::move(port));
    }
    for (auto& c : consumers) {
      CopyState::InPort port;
      port.spec = &stream;
      port.stream_idx = s;
      port.socks.resize(producers.size());
      port.merged = std::make_unique<sim::Channel<CopyState::InPort::Item>>(
          sim_, 0,
          stream.to + std::to_string(c->copy) + ".in" + std::to_string(s));
      port.pending.resize(producers.size());
      port.eow.assign(producers.size(), false);
      port.closed.assign(producers.size(), false);
      port.g_queue_depth = &sim_->obs().registry.gauge(
          "dc.queue_depth{port=" + c->obs_label + ".in" + std::to_string(s) +
          "}");
      c->inputs.push_back(std::move(port));
    }
    for (std::size_t p = 0; p < producers.size(); ++p) {
      for (std::size_t c = 0; c < consumers.size(); ++c) {
        const std::string name = stream.from + std::to_string(p) + "-" +
                                 stream.to + std::to_string(c) + ".s" +
                                 std::to_string(s);
        sockets::SocketPair pair;
        if (producers[p]->node == consumers[c]->node) {
          pair = LocalSocket::make_pair(sim_, producers[p]->node, name);
        } else {
          pair = factory_->connect(
              static_cast<std::size_t>(producers[p]->node->id()),
              static_cast<std::size_t>(consumers[c]->node->id()),
              core_->options.transport);
        }
        producers[p]->outputs.back().socks[c] = std::move(pair.first);
        consumers[c]->inputs.back().socks[p] = std::move(pair.second);
      }
    }
  }

  // Fan-in processes (one per consumer endpoint) and DD ack drains (one per
  // producer endpoint).
  for (const auto& cs : copies_) {
    for (std::size_t i = 0; i < cs->inputs.size(); ++i) {
      for (std::size_t k = 0; k < cs->inputs[i].socks.size(); ++k) {
        sim_->spawn(cs->spec->name + std::to_string(cs->copy) + ".fanin" +
                        std::to_string(i) + "." + std::to_string(k),
                    [cs, i, k] {
                      auto& port = cs->inputs[i];
                      while (auto m = port.socks[k]->recv()) {
                        port.g_queue_depth->add(1);
                        port.merged->send(
                            CopyState::InPort::Item{k, std::move(*m)});
                      }
                      port.merged->send(
                          CopyState::InPort::Item{k, std::nullopt});
                    });
      }
    }
    for (std::size_t o = 0; o < cs->outputs.size(); ++o) {
      if (cs->outputs[o].spec->policy != SchedPolicy::kDemandDriven) continue;
      for (std::size_t c = 0; c < cs->outputs[o].socks.size(); ++c) {
        sim_->spawn(cs->spec->name + std::to_string(cs->copy) + ".ackdrain" +
                        std::to_string(o) + "." + std::to_string(c),
                    [cs, o, c] {
                      auto& port = cs->outputs[o];
                      while (auto m = port.socks[c]->recv()) {
                        if (tag_kind(m->tag) != kKindAck) {
                          throw std::logic_error(
                              "Runtime: non-ack on producer return path");
                        }
                        --port.unacked[c];
                        port.g_unacked->add(-1);
                        port.ack_wait->notify_all();
                      }
                    });
      }
    }
  }

  // Filter-copy processes.
  core_->live_copies = copies_.size();
  for (const auto& cs : copies_) {
    cs->ctx = std::make_unique<ContextImpl>(cs.get());
    sim_->spawn(cs->spec->name + std::to_string(cs->copy),
                [cs] { run_copy(cs); });
  }
}

void Runtime::run_copy(const std::shared_ptr<CopyState>& cs) {
  ContextImpl& ctx = *cs->ctx;
  Core& core = *cs->core;
  // Busy timeline: one `dc.process` span per filter invocation on the
  // copy's node (blocked/stalled slices inside are counted by
  // dc.blocked_ns / dc.stall_ns).
  auto process_once = [&cs, &core, &ctx] {
    const SimTime t0 = core.sim->now();
    cs->filter->process(ctx);
    core.sim->obs().tracer.span(t0, core.sim->now(), cs->node->id(), "dc",
                                "process", ctx.completed_uow_id());
  };
  cs->filter->init(ctx);
  if (cs->is_source) {
    while (auto uow = cs->uow_queue->recv()) {
      ctx.begin_uow(std::move(*uow));
      process_once();
      ctx.send_markers();
      if (cs->is_sink) {
        core.completions.send(UowCompletion{ctx.completed_uow_id(),
                                            cs->spec->name, cs->copy,
                                            core.sim->now()});
      }
    }
  } else {
    while (!ctx.at_end_of_stream()) {
      process_once();
      if (ctx.last_uow_real()) {
        ctx.send_markers();
        if (cs->is_sink) {
          core.completions.send(UowCompletion{ctx.completed_uow_id(),
                                              cs->spec->name, cs->copy,
                                              core.sim->now()});
        }
      }
    }
  }
  cs->filter->finalize(ctx);
  for (auto& port : cs->outputs) {
    for (auto& sock : port.socks) sock->close_send();
  }
  if (--core.live_copies == 0) core.completions.close();
}

void Runtime::submit(Uow uow) {
  if (!started_) throw std::logic_error("Runtime::submit before start");
  for (const auto& src : source_copies_) {
    src->uow_queue->send(uow);
  }
}

void Runtime::close_input() {
  for (const auto& src : source_copies_) {
    if (!src->uow_queue->closed()) src->uow_queue->close();
  }
}

std::optional<UowCompletion> Runtime::wait_completion() {
  return core_->completions.recv();
}

Result<UowCompletion> Runtime::wait_completion_for(SimTime timeout) {
  auto r = core_->completions.recv_for(timeout);
  if (!r.ok()) return r.error();
  if (!r.value()) {
    return Error::closed("Runtime: completion stream closed");
  }
  return std::move(*r.value());
}

std::vector<std::vector<std::uint64_t>> Runtime::distribution(
    std::size_t stream_idx) const {
  return core_->distribution.at(stream_idx);
}

}  // namespace sv::dc
