#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace sv::sim {
namespace {

// ---------------------------------------------------------------------------
// ReferenceEventQueue: the seed engine's binary heap + tombstone sets,
// preserved verbatim as the differential-testing oracle.
// ---------------------------------------------------------------------------

class ReferenceEventQueue final : public EventQueue {
 public:
  void push(SimTime t, std::uint64_t seq, std::uint64_t id,
            InlineHandler fn) override {
    queue_.push(Event{t, seq, id, std::move(fn)});
    pending_ids_.insert(id);
  }

  bool cancel(std::uint64_t id) override {
    // Exact membership test: ids that already fired (or were never issued)
    // are rejected without touching any bookkeeping.
    if (pending_ids_.erase(id) == 0) return false;
    cancelled_.insert(id);
    return true;
  }

  bool pop(SimTime limit, FiredEvent* out) override {
    while (!queue_.empty()) {
      // Peek: stop at the boundary first, then skip tombstones without
      // extracting live events. Tombstones beyond `limit` stay queued
      // until the clock actually reaches them (lazy purge keeps run_until
      // O(events <= limit)).
      const Event& top = queue_.top();
      if (top.time > limit) return false;
      if (cancelled_.erase(top.id) != 0) {
        queue_.pop();
        continue;
      }
      pending_ids_.erase(top.id);
      out->time = top.time;
      out->id = top.id;
      // priority_queue::top() is const; moving the handler out is safe
      // because the element is popped immediately after.
      out->fn = std::move(const_cast<Event&>(top).fn);
      queue_.pop();
      return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t tombstone_count() const override {
    return cancelled_.size();
  }

  [[nodiscard]] const char* name() const override { return "reference_heap"; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    InlineHandler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Ids of events currently in the queue and not cancelled. Membership
  // makes cancel() exact. Never iterated (svlint SV001); membership tests
  // only.
  std::unordered_set<std::uint64_t> pending_ids_;
  // Cancelled ids are tombstoned and skipped on pop; every tombstone
  // corresponds to an event still in queue_, so the set cannot grow beyond
  // the queue and is fully purged as the queue drains.
  std::unordered_set<std::uint64_t> cancelled_;
};

// ---------------------------------------------------------------------------
// TimingWheelEventQueue: hierarchical timing wheel over arena slots.
//
// Geometry (DESIGN.md §12): 1 tick = 2^10 ns; three levels of 2^8 buckets
// each, so level l spans 2^(10+8(l+1)) ns — L0 ≈ 262 us, L1 ≈ 67 ms,
// L2 ≈ 17.2 s. An event is filed at the lowest level whose *current wrap*
// contains its tick (its tick agrees with cur_tick_ on all bits above that
// level); events beyond the current L2 epoch wait in a sorted far list.
// This placement rule guarantees a bucket never mixes events from
// different wraps, so scanning each level's occupancy bitmap strictly
// forward is complete, and cascading re-files a bucket's events exactly
// once per level crossed.
//
// Ordering: buckets are unsorted intrusive stacks; the bucket due next is
// drained into `drain_`, a scratch vector sorted by (time, seq) — the same
// total order the reference heap pops in. Events scheduled at or before
// the wheel's current position (schedule-at-now, or pushes after the wheel
// advanced past their tick during a bounded run_until) are merge-inserted
// into `drain_` directly, preserving the order.
// ---------------------------------------------------------------------------

/// 256-bit occupancy map with find-first-set-at-or-after.
struct Bitmap256 {
  std::uint64_t w[4] = {0, 0, 0, 0};

  void set(unsigned i) { w[i >> 6] |= 1ULL << (i & 63); }
  void clear(unsigned i) { w[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Smallest set index >= from, or -1.
  [[nodiscard]] int next_set(unsigned from) const {
    if (from >= 256) return -1;
    unsigned word = from >> 6;
    std::uint64_t bits = w[word] & (~0ULL << (from & 63));
    while (true) {
      if (bits != 0) {
        return static_cast<int>((word << 6) + std::countr_zero(bits));
      }
      if (++word == 4) return -1;
      bits = w[word];
    }
  }
};

class TimingWheelEventQueue final : public EventQueue {
 public:
  static constexpr int kTickShift = 10;  // 1 tick = 1024 ns
  static constexpr int kLevelBits = 8;   // 256 buckets per level
  static constexpr int kLevels = 3;
  static constexpr std::size_t kBuckets = 1u << kLevelBits;
  static constexpr std::uint64_t kBucketMask = kBuckets - 1;

  explicit TimingWheelEventQueue(obs::Registry* registry)
      : arena_(registry) {
    if (registry != nullptr) {
      cascades_ = &registry->counter("sim.wheel_cascades");
      far_queued_ = &registry->counter("sim.wheel_far_queued");
    } else {
      cascades_ = &own_cascades_;
      far_queued_ = &own_far_;
    }
  }

  void push(SimTime t, std::uint64_t seq, std::uint64_t id,
            InlineHandler fn) override {
    EventSlot* s = arena_.acquire();
    s->time = t;
    s->seq = seq;
    s->id = id;
    s->fn = std::move(fn);
    if (s->fn.heap_allocated()) arena_.handler_heap_counter()->inc();
    ids_.insert(id, s->index);
    place(s);
  }

  bool cancel(std::uint64_t id) override {
    std::uint32_t idx = 0;
    // Exact: fired and cancelled events left the map, so their ids miss.
    if (!ids_.erase(id, &idx)) return false;
    EventSlot* s = arena_.slot_at(idx);
    SV_DCHECK(s->live && s->id == id, "id map points at a stale slot");
    s->cancelled = true;
    ++tombstones_;
    return true;
  }

  bool pop(SimTime limit, FiredEvent* out) override {
    while (true) {
      if (drain_pos_ < drain_.size()) {
        EventSlot* s = drain_[drain_pos_];
        // Boundary first, purge second: a cancelled event beyond `limit`
        // stays queued, exactly like the reference heap.
        if (s->time > limit) return false;
        ++drain_pos_;
        if (s->cancelled) {
          SV_DCHECK(tombstones_ > 0, "tombstone underflow");
          --tombstones_;
          arena_.release(s);
          continue;
        }
        std::uint32_t idx = 0;
        const bool mapped = ids_.erase(s->id, &idx);
        SV_DCHECK(mapped, "live event missing from the id map");
        out->time = s->time;
        out->id = s->id;
        out->fn = std::move(s->fn);
        arena_.release(s);
        return true;
      }
      drain_.clear();
      drain_pos_ = 0;
      if (!refill()) return false;
    }
  }

  [[nodiscard]] std::size_t tombstone_count() const override {
    return tombstones_;
  }

  [[nodiscard]] const char* name() const override { return "timing_wheel"; }

  // ---- White-box introspection (tests / benches) ----
  [[nodiscard]] const EventArena& arena() const { return arena_; }
  [[nodiscard]] std::size_t far_count() const { return far_.size(); }

 private:
  [[nodiscard]] static std::uint64_t to_tick(SimTime t) {
    SV_DCHECK(t.ns() >= 0, "negative event time");
    return static_cast<std::uint64_t>(t.ns()) >> kTickShift;
  }

  [[nodiscard]] static bool before(const EventSlot* a, const EventSlot* b) {
    if (a->time != b->time) return a->time < b->time;
    return a->seq < b->seq;
  }

  /// Files a slot by tick. Lowest level whose current wrap contains the
  /// tick; at-or-before the wheel position goes straight to drain_.
  void place(EventSlot* s) {
    const std::uint64_t tick = to_tick(s->time);
    if (tick <= cur_tick_) {
      drain_insert(s);
      return;
    }
    for (int lvl = 0; lvl < kLevels; ++lvl) {
      const int above = kLevelBits * (lvl + 1);
      if ((tick >> above) == (cur_tick_ >> above)) {
        const auto idx =
            static_cast<unsigned>((tick >> (kLevelBits * lvl)) & kBucketMask);
        s->next = buckets_[lvl][idx];
        buckets_[lvl][idx] = s;
        occupied_[lvl].set(idx);
        ++wheel_slots_;
        return;
      }
    }
    far_insert(s);
  }

  /// Sorted insert into drain_ at a position >= drain_pos_. Events already
  /// consumed (indices < drain_pos_) fired at times <= now or were
  /// tombstones, so the suffix is the only live ordering domain.
  void drain_insert(EventSlot* s) {
    const auto it = std::lower_bound(drain_.begin() + static_cast<std::ptrdiff_t>(drain_pos_),
                                     drain_.end(), s, before);
    drain_.insert(it, s);
  }

  /// Comparator for the far min-heap: std::push_heap builds a max-heap, so
  /// invert before() to keep the earliest (time, seq) at the front.
  [[nodiscard]] static bool far_later(const EventSlot* a, const EventSlot* b) {
    return before(b, a);
  }

  /// Events beyond the current L2 epoch wait in a binary min-heap keyed on
  /// (time, seq). Only min-extraction order matters here (FIFO-within-
  /// timestamp is restored when the slots are re-filed into the wheel and
  /// drain_ sorts them), so a heap's O(log n) insert beats a sorted list's
  /// linear scan for the uniformly-random far horizons the stacks generate.
  /// The backing vector is reused across epochs: steady state stays
  /// zero-alloc once it has grown to the high-water mark.
  void far_insert(EventSlot* s) {
    far_queued_->inc();
    far_.push_back(s);
    std::push_heap(far_.begin(), far_.end(), far_later);
  }

  /// Moves every far event in the wheel's (new) current L2 epoch into the
  /// wheel. Called right after cur_tick_ jumps epochs.
  void pull_far() {
    const int above = kLevelBits * kLevels;
    while (!far_.empty() &&
           (to_tick(far_.front()->time) >> above) == (cur_tick_ >> above)) {
      std::pop_heap(far_.begin(), far_.end(), far_later);
      EventSlot* s = far_.back();
      far_.pop_back();
      place(s);
    }
  }

  /// Unlinks bucket (lvl, idx) and re-files each slot against the current
  /// wheel position (slots land one level down, or in drain_).
  void cascade(int lvl, unsigned idx) {
    EventSlot* s = buckets_[lvl][idx];
    buckets_[lvl][idx] = nullptr;
    occupied_[lvl].clear(idx);
    while (s != nullptr) {
      EventSlot* next = s->next;
      s->next = nullptr;
      --wheel_slots_;
      cascades_->inc();
      place(s);
      s = next;
    }
  }

  /// Drains L0 bucket `idx` (all slots share one tick) into drain_,
  /// sorted by (time, seq).
  void drain_bucket(unsigned idx) {
    SV_DCHECK(drain_.empty() && drain_pos_ == 0, "drain not consumed");
    EventSlot* s = buckets_[0][idx];
    buckets_[0][idx] = nullptr;
    occupied_[0].clear(idx);
    while (s != nullptr) {
      drain_.push_back(s);
      --wheel_slots_;
      EventSlot* next = s->next;
      s->next = nullptr;
      s = next;
    }
    // The bucket is a LIFO stack, so pushes in seq order come out reversed;
    // undoing the reversal restores (time, seq) order outright whenever the
    // bucket was filled front-to-back (the common case — e.g. an entire
    // same-timestamp burst), making the sort a verify-only pass.
    std::reverse(drain_.begin(), drain_.end());
    if (!std::is_sorted(drain_.begin(), drain_.end(), before)) {
      std::sort(drain_.begin(), drain_.end(), before);
    }
  }

  /// Advances the wheel to the next occupied tick and drains it into
  /// drain_; false when nothing is queued anywhere.
  bool refill() {
    while (true) {
      // Level 0: next occupied bucket in the current 256-tick block.
      const int b0 =
          occupied_[0].next_set(static_cast<unsigned>(cur_tick_ & kBucketMask));
      if (b0 >= 0) {
        cur_tick_ = (cur_tick_ & ~kBucketMask) + static_cast<unsigned>(b0);
        drain_bucket(static_cast<unsigned>(b0));
        return true;
      }
      // Level 1: jump to the next occupied bucket later in this wrap.
      // Strictly-forward scans are complete because placement never files
      // next-wrap events into a level (see class comment).
      const int b1 = occupied_[1].next_set(
          static_cast<unsigned>((cur_tick_ >> kLevelBits) & kBucketMask) + 1);
      if (b1 >= 0) {
        cur_tick_ = (cur_tick_ & ~((kBucketMask << kLevelBits) | kBucketMask)) |
                    (static_cast<std::uint64_t>(b1) << kLevelBits);
        cascade(1, static_cast<unsigned>(b1));
        // Slots at exactly the new wheel position (L0 index 0 of the
        // cascaded bucket) were re-filed straight into drain_; they are
        // due now and strictly earlier than anything still in a bucket.
        if (drain_pos_ < drain_.size()) return true;
        continue;
      }
      // Level 2.
      const int b2 = occupied_[2].next_set(
          static_cast<unsigned>((cur_tick_ >> (2 * kLevelBits)) & kBucketMask) +
          1);
      if (b2 >= 0) {
        const std::uint64_t keep = cur_tick_ >> (3 * kLevelBits);
        cur_tick_ = (keep << (3 * kLevelBits)) |
                    (static_cast<std::uint64_t>(b2) << (2 * kLevelBits));
        cascade(2, static_cast<unsigned>(b2));
        if (drain_pos_ < drain_.size()) return true;
        continue;
      }
      // Current L2 epoch exhausted: jump to the earliest far event's epoch.
      SV_DCHECK(wheel_slots_ == 0, "wheel slots unreachable by scan");
      if (far_.empty()) return false;
      cur_tick_ = to_tick(far_.front()->time);
      pull_far();
      // The pulled head landed in drain_ (tick == cur_tick_) or a bucket.
      if (drain_pos_ < drain_.size()) return true;
    }
  }

  EventArena arena_;
  IdSlotMap ids_;
  EventSlot* buckets_[kLevels][kBuckets] = {};
  Bitmap256 occupied_[kLevels];
  /// The wheel's position: every event with tick < cur_tick_ has been
  /// moved to drain_ (or fired/purged); the L0 bucket for cur_tick_ itself
  /// is always empty (same-tick pushes go to drain_).
  std::uint64_t cur_tick_ = 0;
  /// Sorted scratch of due events; reused across refills so the
  /// steady-state hot path never allocates.
  std::vector<EventSlot*> drain_;
  std::size_t drain_pos_ = 0;
  /// Min-heap (see far_later) of events beyond the current L2 epoch.
  std::vector<EventSlot*> far_;
  std::size_t wheel_slots_ = 0;
  std::size_t tombstones_ = 0;
  obs::Counter own_cascades_, own_far_;
  obs::Counter* cascades_ = nullptr;
  obs::Counter* far_queued_ = nullptr;
};

}  // namespace

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind,
                                             obs::Registry* registry) {
  if (kind == QueueKind::kReferenceHeap) {
    return std::make_unique<ReferenceEventQueue>();
  }
  return std::make_unique<TimingWheelEventQueue>(registry);
}

}  // namespace sv::sim
