#include "sim/process.h"

#include "sim/simulation.h"

namespace sv::sim {

Process::Process(Simulation* sim, std::uint64_t id, std::string name,
                 std::function<void()> body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)) {
  thread_ = std::thread([this] { trampoline(); });
}

Process::~Process() {
  // Simulation guarantees the process has finished (or been killed) before
  // destruction; join here as the final safety net.
  if (thread_.joinable()) thread_.join();
}

void Process::trampoline() {
  {
    // Wait for the first resume before touching any simulation state.
    std::unique_lock<std::mutex> lk(mutex_);
    cv_.wait(lk, [this] { return ctl_ == Ctl::kProcess; });
  }
  try {
    body_();
  } catch (const ProcessKilled&) {
    // Normal shutdown path.
  } catch (...) {
    error_ = std::current_exception();
  }
  finished_ = true;
  // Hand control back one last time; the scheduler observes finished_.
  std::unique_lock<std::mutex> lk(mutex_);
  ctl_ = Ctl::kScheduler;
  cv_.notify_all();
}

void Process::resume_from_scheduler() {
  {
    std::unique_lock<std::mutex> lk(mutex_);
    ctl_ = Ctl::kProcess;
    cv_.notify_all();
    cv_.wait(lk, [this] { return ctl_ == Ctl::kScheduler; });
  }
}

void Process::yield_to_scheduler() {
  std::unique_lock<std::mutex> lk(mutex_);
  ctl_ = Ctl::kScheduler;
  cv_.notify_all();
  cv_.wait(lk, [this] { return ctl_ == Ctl::kProcess; });
}

}  // namespace sv::sim
