#include "sim/simulation.h"

#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/log.h"

namespace sv::sim {

Simulation::Simulation(QueueKind queue_kind) : engine_(queue_kind) {}

Simulation::~Simulation() {
  shutting_down_ = true;
  // Unwind every live process: resuming a blocked process makes its blocking
  // primitive observe shutting_down_ and throw ProcessKilled. Index loop:
  // a dying process could in principle spawn (processes_ may grow).
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    while (!processes_[i]->finished_) {
      resume(*processes_[i]);
    }
  }
}

Process& Simulation::spawn_impl(std::string name, std::function<void()> body) {
  processes_.push_back(std::make_unique<Process>(
      this, next_process_id_++, std::move(name), std::move(body)));
  Process* p = processes_.back().get();
  engine_.schedule(SimTime::zero(), [this, p] { resume(*p); });
  return *p;
}

void Simulation::resume(Process& p) {
  if (p.finished_) return;
  Process* prev = current_;
  current_ = &p;
  p.resume_from_scheduler();
  current_ = prev;
  if (p.error_) {
    auto err = std::exchange(p.error_, nullptr);
    if (shutting_down_) {
      SV_ERROR("sim") << "process '" << p.name()
                      << "' threw during shutdown; exception dropped";
    } else {
      std::rethrow_exception(err);
    }
  }
}

void Simulation::check_current_killed() {
  if (shutting_down_) throw ProcessKilled{};
}

void Simulation::delay(SimTime d) {
  Process* p = current_;
  if (p == nullptr) {
    throw std::logic_error("Simulation::delay called outside a process");
  }
  if (d < SimTime::zero()) {
    throw std::invalid_argument("Simulation::delay: negative duration");
  }
  p->blocked_ = true;
  p->block_reason_ = "delay";
  const std::uint64_t epoch = ++p->wait_epoch_;
  engine_.schedule(d, [this, p, epoch] {
    if (p->blocked_ && p->wait_epoch_ == epoch) {
      p->blocked_ = false;
      resume(*p);
    }
  });
  p->yield_to_scheduler();
  check_current_killed();
}

void Simulation::block_current(const std::string& reason) {
  Process* p = current_;
  if (p == nullptr) {
    throw std::logic_error("Simulation::block_current outside a process");
  }
  p->blocked_ = true;
  p->block_reason_ = reason;
  ++p->wait_epoch_;
  p->yield_to_scheduler();
  check_current_killed();
}

void Simulation::wake(Process& p) {
  // During shutdown, destructor cascades (channels closing as objects die)
  // may try to wake processes that were already destroyed; everything is
  // being unwound anyway, so waking is a no-op. Checked before touching
  // `p`, whose memory may already be gone.
  if (shutting_down_) return;
  if (!p.blocked_ || p.finished_) return;
  // Claim the wakeup immediately so double-wakes are no-ops, but deliver it
  // through the event queue to preserve deterministic ordering.
  p.blocked_ = false;
  engine_.schedule(SimTime::zero(), [this, &p] { resume(p); });
}

namespace {
// Clears running_ even when a process error propagates out of run(), so a
// test that EXPECT_THROWs on run() can keep using the simulation.
struct RunningScope {
  explicit RunningScope(bool* flag) : flag_(flag) { *flag_ = true; }
  ~RunningScope() { *flag_ = false; }
  RunningScope(const RunningScope&) = delete;
  RunningScope& operator=(const RunningScope&) = delete;
  bool* flag_;
};
}  // namespace

void Simulation::run() {
  SV_ASSERT(!running_ && current_ == nullptr,
            "Simulation::run: nested run (called from inside a process or "
            "event handler)");
  RunningScope scope(&running_);
  engine_.run();
}

void Simulation::run_until(SimTime t) {
  SV_ASSERT(!running_ && current_ == nullptr,
            "Simulation::run_until: nested run (called from inside a process "
            "or event handler)");
  RunningScope scope(&running_);
  engine_.run_until(t);
}

void Simulation::publish_metrics_every(SimTime period) {
  SV_ASSERT(period > SimTime::zero(),
            "publish_metrics_every: period must be positive");
  SV_ASSERT(!pump_active_,
            "publish_metrics_every: a snapshot pump is already installed");
  pump_active_ = true;
  engine_.schedule(period, [this, period] { pump_snapshot(period); });
}

void Simulation::pump_snapshot(SimTime period) {
  obs::Hub& hub = engine_.obs();
  hub.registry.counter("obs.snapshots").inc();
  hub.tracer.instant(now(), /*node=*/-1, "obs", "snapshot",
                     hub.snapshots_published());
  hub.publish(now());
  // Reschedule only while other work remains: when the pump is the only
  // pending event the run is over, and a self-perpetuating tick would keep
  // run() (which drains the queue) from ever returning.
  if (engine_.pending() > 0) {
    engine_.schedule(period, [this, period] { pump_snapshot(period); });
  } else {
    pump_active_ = false;
  }
}

std::size_t Simulation::live_process_count() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->finished()) ++n;
  }
  return n;
}

std::vector<std::string> Simulation::blocked_process_names() const {
  std::vector<std::string> names;
  for (const auto& p : processes_) {
    if (!p->finished() && p->blocked()) {
      names.push_back(p->name() + " (" + p->block_reason() + ")");
    }
  }
  return names;
}

}  // namespace sv::sim
