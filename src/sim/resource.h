// FIFO resources: model CPU cores, NIC engines and link occupancy.
//
// Resource hands units to waiters in strict FIFO order with direct handoff
// (a released unit goes straight to the oldest waiter and cannot be stolen
// by a later arrival at the same timestamp), which is what a work-conserving
// hardware queue does and keeps the simulation deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/units.h"
#include "sim/simulation.h"

namespace sv::sim {

class Resource {
 public:
  Resource(Simulation* sim, std::int64_t capacity,
           std::string name = "resource");

  /// Blocks until a unit is available, then holds it.
  void acquire();
  /// Non-blocking; true on success.
  bool try_acquire();
  /// Returns a unit; if someone is waiting, the unit transfers directly.
  void release();
  /// acquire(); delay(hold); release() — the common "occupy for t" pattern.
  void use(SimTime hold);

  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t in_use() const { return in_use_; }
  [[nodiscard]] std::int64_t available() const { return capacity_ - in_use_; }
  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }

  /// Cumulative busy integral (unit-nanoseconds) for utilization reporting.
  [[nodiscard]] std::int64_t busy_ns() const;
  [[nodiscard]] double utilization(SimTime window_start,
                                   SimTime window_end) const;

 private:
  void account();

  Simulation* sim_;
  std::int64_t capacity_;
  std::string name_;
  std::int64_t in_use_ = 0;
  std::deque<Process*> waiters_;

  // Busy-time accounting.
  mutable SimTime last_change_ = SimTime::zero();
  mutable std::int64_t busy_integral_ns_ = 0;
};

/// A full-duplex point-to-point pipe modelled as two independent
/// single-server resources (TX of the sender side, RX of the receiver side).
struct DuplexPort {
  DuplexPort(Simulation* sim, const std::string& name)
      : tx(sim, 1, name + ".tx"), rx(sim, 1, name + ".rx") {}
  Resource tx;
  Resource rx;
};

}  // namespace sv::sim
