#include "sim/resource.h"

#include <stdexcept>

#include "common/check.h"

namespace sv::sim {

Resource::Resource(Simulation* sim, std::int64_t capacity, std::string name)
    : sim_(sim), capacity_(capacity), name_(std::move(name)) {
  if (capacity <= 0) {
    throw std::invalid_argument("Resource[" + name_ + "]: capacity must be > 0");
  }
}

void Resource::account() {
  const SimTime now = sim_->now();
  SV_DCHECK(now >= last_change_,
            "Resource[" + name_ + "]: simulated clock moved backwards");
  busy_integral_ns_ += in_use_ * (now - last_change_).ns();
  last_change_ = now;
}

void Resource::acquire() {
  Process* p = sim_->current();
  if (p == nullptr) {
    throw std::logic_error("Resource[" + name_ + "]::acquire outside process");
  }
  if (in_use_ < capacity_ && waiters_.empty()) {
    account();
    ++in_use_;
    SV_DCHECK(in_use_ <= capacity_,
              "Resource[" + name_ + "]: holders exceed capacity");
    return;
  }
  waiters_.push_back(p);
  sim_->block_current(name_);
  // Direct handoff: release() transferred the unit to us before waking, so
  // in_use_ already counts this holder. Nothing to re-check.
  SV_DCHECK(in_use_ > 0 && in_use_ <= capacity_,
            "Resource[" + name_ + "]: handoff bookkeeping corrupt");
}

bool Resource::try_acquire() {
  if (in_use_ < capacity_ && waiters_.empty()) {
    account();
    ++in_use_;
    return true;
  }
  return false;
}

void Resource::release() {
  // Double-release detection: every release must match a held unit.
  SV_ASSERT(in_use_ > 0,
            "Resource[" + name_ + "]::release with none held (double release?)");
  if (!waiters_.empty()) {
    // Transfer the unit directly to the oldest waiter; in_use_ is unchanged.
    Process* next = waiters_.front();
    waiters_.pop_front();
    sim_->wake(*next);
    return;
  }
  account();
  --in_use_;
}

void Resource::use(SimTime hold) {
  acquire();
  sim_->delay(hold);
  release();
}

std::int64_t Resource::busy_ns() const {
  const SimTime now = sim_->now();
  return busy_integral_ns_ + in_use_ * (now - last_change_).ns();
}

double Resource::utilization(SimTime window_start, SimTime window_end) const {
  const auto span = (window_end - window_start).ns();
  if (span <= 0) return 0.0;
  return static_cast<double>(busy_ns()) /
         static_cast<double>(span * capacity_);
}

}  // namespace sv::sim
