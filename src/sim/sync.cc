#include "sim/sync.h"

#include <limits>

#include "common/check.h"

namespace sv::sim {

void WaitQueue::scrub() {
  while (!entries_.empty() && entries_.front()->done) {
    entries_.pop_front();
  }
}

void WaitQueue::wait() {
  Process* p = sim_->current();
  if (p == nullptr) {
    throw std::logic_error("WaitQueue[" + name_ + "]::wait outside process");
  }
  auto entry = std::make_shared<Entry>();
  entry->proc = p;
  entries_.push_back(std::move(entry));
  sim_->block_current(name_);
}

bool WaitQueue::wait_for(SimTime timeout) {
  Process* p = sim_->current();
  if (p == nullptr) {
    throw std::logic_error("WaitQueue[" + name_ +
                           "]::wait_for outside process");
  }
  auto entry = std::make_shared<Entry>();
  entry->proc = p;
  entries_.push_back(entry);
  // The timeout event deliberately captures only the shared entry and the
  // simulation — never `this` — so it stays safe even if the WaitQueue is
  // destroyed before the event fires. Timed-out entries are lazily scrubbed.
  sim_->schedule(timeout, [sim = sim_, entry] {
    if (entry->done) return;
    entry->done = true;
    entry->notified = false;
    sim->wake(*entry->proc);
  });
  sim_->block_current(name_);
  return entry->notified;
}

bool WaitQueue::notify_one() {
  scrub();
  if (entries_.empty()) return false;
  auto entry = std::move(entries_.front());
  entries_.pop_front();
  SV_DCHECK(entry->proc != nullptr && !entry->done,
            "WaitQueue[" + name_ + "]: scrubbed entry at queue head");
  entry->done = true;
  entry->notified = true;
  sim_->wake(*entry->proc);
  return true;
}

void WaitQueue::notify_all() {
  while (notify_one()) {
  }
}

std::size_t WaitQueue::waiter_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (!e->done) ++n;
  }
  return n;
}

void Semaphore::acquire() {
  while (count_ <= 0) {
    queue_.wait();
  }
  --count_;
  SV_DCHECK(count_ >= 0, "Semaphore: count went negative");
}

bool Semaphore::try_acquire() {
  if (count_ <= 0) return false;
  --count_;
  return true;
}

void Semaphore::release() {
  // Overflow here means unbalanced release() calls (the semaphore analogue
  // of a double-release).
  SV_ASSERT(count_ < std::numeric_limits<std::int64_t>::max(),
            "Semaphore: release overflow (unbalanced release calls)");
  ++count_;
  queue_.notify_one();
}

}  // namespace sv::sim
