// The engine's event-queue abstraction (DESIGN.md §12).
//
// Engine owns the clock, ids, the live-event count and the trace digest;
// an EventQueue owns only *ordering*: deliver pending events in ascending
// (time, seq), with exact cancellation. Two implementations share the
// contract:
//
//  - ReferenceEventQueue: the original std::priority_queue over
//    std::vector with unordered_set tombstones. O(log n) per operation and
//    allocation-happy, but simple enough to audit by eye — it is the
//    oracle the fast queue is differentially tested against
//    (tests/sim/event_queue_diff_test.cc).
//
//  - TimingWheelEventQueue: a 3-level hierarchical timing wheel (1024 ns
//    ticks, 256 buckets per level, ~17 simulated seconds of horizon) with
//    a sorted far-list for events beyond the top level, arena-allocated
//    slots and an open-addressing id map. O(1) schedule/cancel, amortized
//    O(1) fire, and zero heap allocations in steady state.
//
// Both implement *lazy* tombstoning: cancel marks the event and pop purges
// it when it reaches the front, so tombstone_count() — and therefore every
// white-box test — reads identically on either queue. Firing order is
// bit-identical by construction; tests/integration/digest_pins.txt holds
// the proof.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.h"
#include "sim/event_arena.h"

namespace sv::sim {

/// Which EventQueue implementation an Engine/Simulation runs on.
enum class QueueKind {
  kTimingWheel,    // the fast default
  kReferenceHeap,  // the audited oracle (tests, differential benches)
};

/// A popped event, ready to fire. The handler is moved out of the queue's
/// storage before invocation, so a handler that reschedules (and thereby
/// recycles its own slot) cannot alias itself.
struct FiredEvent {
  SimTime time;
  std::uint64_t id = 0;
  InlineHandler fn;
};

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Inserts an event. `seq` is the engine's global insertion counter:
  /// delivery is in ascending (time, seq), which makes same-timestamp
  /// events FIFO — the property the determinism contract leans on
  /// (DESIGN.md §8, §12).
  virtual void push(SimTime t, std::uint64_t seq, std::uint64_t id,
                    InlineHandler fn) = 0;

  /// Exact cancel: true iff `id` is pending and not already cancelled.
  /// Cancelled events stay physically queued (lazily purged on pop), so
  /// cancel is O(1) and tombstone accounting matches the reference.
  virtual bool cancel(std::uint64_t id) = 0;

  /// Extracts the earliest live event with time <= limit, purging any
  /// cancelled events encountered on the way. Cancelled events beyond
  /// `limit` stay queued — lazy purge keeps run_until O(events <= limit).
  /// Returns false when no live event is due by `limit`.
  virtual bool pop(SimTime limit, FiredEvent* out) = 0;

  /// Cancelled-but-still-queued events (white-box introspection; bounded
  /// by the number of queued events and zero once drained).
  [[nodiscard]] virtual std::size_t tombstone_count() const = 0;

  /// Implementation name for diagnostics and bench output.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Factory keyed on QueueKind. `registry` (nullable) receives the sim.*
/// arena/wheel counters.
std::unique_ptr<EventQueue> make_event_queue(QueueKind kind,
                                             obs::Registry* registry);

}  // namespace sv::sim
