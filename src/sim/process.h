// A simulated process: user code that runs on its own OS thread but is
// scheduled cooperatively — exactly one process (or the scheduler) executes
// at any instant, so simulation state needs no locking and runs are
// deterministic.
//
// Processes block inside simulated primitives (delay, channels, resources);
// the scheduler resumes them when the corresponding simulated event fires.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace sv::sim {

class Simulation;

/// Thrown inside a process when the simulation shuts down while the process
/// is blocked; unwinds the process thread cleanly. User code should not
/// catch it (or must rethrow).
struct ProcessKilled {};

class Process {
 public:
  Process(Simulation* sim, std::uint64_t id, std::string name,
          std::function<void()> body);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool blocked() const { return blocked_; }
  /// Non-empty label describing what the process is blocked on (diagnostics).
  [[nodiscard]] const std::string& block_reason() const {
    return block_reason_;
  }

 private:
  friend class Simulation;

  enum class Ctl { kScheduler, kProcess };

  /// Scheduler-side: hand control to the process, wait until it yields back.
  void resume_from_scheduler();
  /// Process-side: hand control back to the scheduler, wait to be resumed.
  void yield_to_scheduler();
  void trampoline();

  Simulation* sim_;
  std::uint64_t id_;
  std::string name_;
  std::function<void()> body_;

  std::mutex mutex_;
  std::condition_variable cv_;
  Ctl ctl_ = Ctl::kScheduler;

  bool finished_ = false;
  bool blocked_ = false;       // waiting for an explicit wake()
  std::uint64_t wait_epoch_ = 0;  // bumps on every block; guards stale wakes
  std::string block_reason_;
  std::exception_ptr error_;
  std::thread thread_;
};

}  // namespace sv::sim
