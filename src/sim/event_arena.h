// Slab/arena storage for engine events (DESIGN.md §12).
//
// The event-queue hot path (schedule → fire, millions of times per
// experiment) must not touch the general-purpose allocator in steady
// state: EventArena hands out fixed EventSlot records carved from slabs
// and recycles released slots through an intrusive LIFO free list — the
// mem::BufferPool idiom (DESIGN.md §10) generalized to the simulator core
// (src/sim sits *below* src/mem in the layering DAG, so the idiom is
// reimplemented here rather than reused).
//
// Handlers are stored as InlineHandler: a small-buffer-optimized callable
// whose capture state lives inside the slot itself. Callables up to
// kInlineBytes (covers every engine handler in the tree, including a
// wrapped std::function) construct in place; larger ones spill to the heap
// and are counted (`sim.arena_handler_heap`) so regressions are visible.
//
// Accounting mirrors mem.pool_alloc/mem.pool_reuse: `sim.arena_slot_alloc`
// counts slots carved fresh from a slab, `sim.arena_slot_reuse` counts
// free-list recycles, and `sim.arena_slabs` counts slab allocations. In
// steady state only the reuse counter may advance — asserted by
// tests/sim/event_arena_test.cc.
//
// Determinism: the free list is strictly LIFO and the engine is
// single-threaded, so slot addresses, counter values, and recycling order
// are identical across runs of the same seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace sv::sim {

/// Small-buffer-optimized move-only callable (void() signature). Unlike
/// std::function, the inline capacity is large enough for every engine
/// handler in this codebase, making the schedule/fire path allocation-free;
/// larger captures fall back to the heap (see heap_allocated()).
class InlineHandler {
 public:
  /// Inline capture capacity. Sized to hold a std::function<void()> (32
  /// bytes on libstdc++) or a lambda capturing up to six pointers.
  static constexpr std::size_t kInlineBytes = 48;

  InlineHandler() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineHandler> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineHandler(F&& fn) {  // NOLINT(google-explicit-constructor): handler
    // types convert implicitly, mirroring the std::function API it replaces.
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = inline_ops<Fn>();
    } else {
      heap_ = new Fn(std::forward<F>(fn));
      ops_ = heap_ops<Fn>();
    }
  }

  InlineHandler(InlineHandler&& o) noexcept { steal(std::move(o)); }
  InlineHandler& operator=(InlineHandler&& o) noexcept {
    if (this != &o) {
      reset();
      steal(std::move(o));
    }
    return *this;
  }
  InlineHandler(const InlineHandler&) = delete;
  InlineHandler& operator=(const InlineHandler&) = delete;
  ~InlineHandler() { reset(); }

  void operator()() { ops_->invoke(target()); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }
  /// True when the callable spilled past kInlineBytes onto the heap.
  [[nodiscard]] bool heap_allocated() const {
    return ops_ != nullptr && !ops_->is_inline;
  }

  /// Destroys the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into dst's inline buffer and destroy src (inline
    /// storage only; heap handlers move by pointer steal).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool is_inline;
  };

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
        true};
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        nullptr,  // heap handlers relocate by pointer steal
        [](void* p) { delete static_cast<Fn*>(p); },
        false};
    return &ops;
  }

  [[nodiscard]] void* target() {
    return ops_ != nullptr && ops_->is_inline ? static_cast<void*>(buf_)
                                              : heap_;
  }

  void steal(InlineHandler&& o) {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      if (ops_->is_inline) {
        ops_->relocate(buf_, o.buf_);
      } else {
        heap_ = o.heap_;
      }
      o.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  union {
    alignas(std::max_align_t) std::byte buf_[kInlineBytes];
    void* heap_;
  };
};

/// One pending event. Lives in an EventArena slab; the prev/next links
/// thread it through whichever intrusive list currently owns it (a wheel
/// bucket, the far list, or the arena free list).
struct EventSlot {
  SimTime time;
  std::uint64_t seq = 0;
  std::uint64_t id = 0;
  EventSlot* prev = nullptr;
  EventSlot* next = nullptr;
  /// Stable arena index (slab * kSlabSlots + offset); the id→slot map
  /// stores this instead of a pointer.
  std::uint32_t index = 0;
  /// Lazily-purged tombstone flag (set by cancel, cleared on recycle).
  bool cancelled = false;
  /// Aliasing guard: true from acquire() to release(). SV_DCHECKed so a
  /// recycled slot can never be handed out while still referenced.
  bool live = false;
  InlineHandler fn;
};

/// Slab allocator + LIFO free list for EventSlots (see file comment).
class EventArena {
 public:
  /// `registry` may be null (standalone micro-tests); counters then
  /// accumulate into internal dummies.
  explicit EventArena(obs::Registry* registry);

  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  /// Returns a dead slot, recycling the most recently released one when
  /// available (LIFO) or carving a fresh slot (growing by one slab when
  /// the current slab is exhausted). The slot's handler is empty.
  [[nodiscard]] EventSlot* acquire();

  /// Destroys the slot's handler and pushes it onto the free list.
  void release(EventSlot* slot);

  [[nodiscard]] EventSlot* slot_at(std::uint32_t index);

  // ---- White-box introspection (tests / benchmarks) ----
  [[nodiscard]] std::size_t live_count() const { return live_; }
  [[nodiscard]] std::size_t free_count() const { return free_; }
  [[nodiscard]] std::uint64_t slab_allocs() const { return slabs_c_->value(); }
  [[nodiscard]] std::uint64_t slot_allocs() const { return alloc_c_->value(); }
  [[nodiscard]] std::uint64_t slot_reuses() const { return reuse_c_->value(); }
  /// Counter for handlers that spilled past InlineHandler's buffer; bumped
  /// by the owning queue (the arena cannot see handler construction).
  [[nodiscard]] obs::Counter* handler_heap_counter() { return heap_c_; }

  static constexpr std::size_t kSlabSlots = 256;

 private:
  std::vector<std::unique_ptr<EventSlot[]>> slabs_;
  EventSlot* free_head_ = nullptr;  // intrusive LIFO via EventSlot::next
  std::size_t next_unused_ = 0;     // first never-used slot index
  std::size_t live_ = 0;
  std::size_t free_ = 0;
  // Registry-backed when a registry is supplied; otherwise the owned
  // fallbacks keep the accessors meaningful in standalone tests.
  obs::Counter own_slabs_, own_alloc_, own_reuse_, own_heap_;
  obs::Counter* slabs_c_ = nullptr;
  obs::Counter* alloc_c_ = nullptr;
  obs::Counter* reuse_c_ = nullptr;
  obs::Counter* heap_c_ = nullptr;
};

/// Open-addressing map from event id to arena slot index, sized so the
/// schedule/cancel path stays allocation-free once the table has grown to
/// the experiment's peak pending-event count. Keys are the engine's dense
/// sequential ids (never 0); values are EventArena slot indices. Lookup
/// order is never iterated, so determinism does not depend on the hash
/// (and the multiplicative hash is platform-stable anyway).
class IdSlotMap {
 public:
  IdSlotMap();

  void insert(std::uint64_t id, std::uint32_t slot);
  /// Removes `id`, writing its slot index to *slot_out; false when absent
  /// (the exact cancel-after-fire test).
  bool erase(std::uint64_t id, std::uint32_t* slot_out);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return keys_.size(); }

 private:
  [[nodiscard]] std::size_t slot_for(std::uint64_t id) const {
    // Fibonacci (multiplicative) hashing: deterministic across platforms.
    return static_cast<std::size_t>((id * 11400714819323198485ULL) >>
                                    shift_);
  }
  void grow();

  std::vector<std::uint64_t> keys_;  // 0 = empty
  std::vector<std::uint32_t> vals_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  int shift_ = 0;
};

}  // namespace sv::sim
