// Discrete-event core: a clock and a (time, seq)-ordered event queue.
//
// Events with equal timestamps fire in insertion order, which — together
// with the one-process-at-a-time execution model in simulation.h — makes
// every run of a seeded experiment bit-identical. The engine folds every
// fired event into an FNV-1a trace digest so replay tests can prove two
// runs executed the identical event sequence (see trace_digest()).
//
// The ordering itself lives behind the EventQueue interface (DESIGN.md
// §12): the default is a hierarchical timing wheel with arena-allocated
// events (zero steady-state heap traffic); QueueKind::kReferenceHeap
// selects the original binary-heap oracle, which differential tests hold
// the wheel against (tests/sim/event_queue_diff_test.cc).
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.h"
#include "obs/hub.h"
#include "sim/event_queue.h"

namespace sv::sim {

class Engine {
 public:
  /// Small-buffer-optimized move-only callable: engine handlers construct
  /// in place inside the event record, so scheduling a small lambda does
  /// not touch the heap (event_arena.h).
  using Handler = InlineHandler;

  explicit Engine(QueueKind queue_kind = QueueKind::kTimingWheel);

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to fire at absolute time `t` (must be >= now()).
  /// Returns an id usable with `cancel`.
  std::uint64_t schedule_at(SimTime t, Handler fn);
  /// Schedules `fn` to fire `delay` after now().
  std::uint64_t schedule(SimTime delay, Handler fn);

  /// Cancels a pending event; returns false if already fired/cancelled
  /// (cancel-after-fire is detected exactly, not guessed).
  bool cancel(std::uint64_t id);

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events_; }

  /// Pops and runs the next event; returns false if the queue is empty.
  /// Re-entrant calls (stepping the engine from inside a handler) violate
  /// the one-event-at-a-time contract and fail an SV_ASSERT.
  bool step();
  /// Runs events until the queue is empty.
  void run();
  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t);

  [[nodiscard]] std::uint64_t events_fired() const {
    return fired_->value();
  }

  /// The simulation-wide observability bundle (tracer + metrics registry).
  /// Every layer reaches it through here; see DESIGN.md §9.
  [[nodiscard]] obs::Hub& obs() { return obs_; }
  [[nodiscard]] const obs::Hub& obs() const { return obs_; }

  /// FNV-1a hash over the (time, id) pairs of every fired event, in firing
  /// order. Two runs of the same seeded experiment must produce identical
  /// digests; see tests/integration/determinism_replay_test.cc and the
  /// cross-queue pins in tests/integration/digest_pins.txt.
  [[nodiscard]] std::uint64_t trace_digest() const { return digest_; }

  // ---- White-box introspection (tests only) ----
  /// Number of tombstoned (cancelled but not yet popped) events. Bounded by
  /// pending() + fired backlog; must drain to zero as the queue empties.
  /// Identical on both queue implementations (both purge lazily).
  [[nodiscard]] std::size_t tombstone_count() const {
    return queue_->tombstone_count();
  }
  /// The active queue implementation ("timing_wheel" / "reference_heap").
  [[nodiscard]] const char* queue_name() const { return queue_->name(); }

 private:
  /// Marks a fired event: updates bookkeeping, clock and trace digest.
  void note_fired(SimTime t, std::uint64_t id);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_events_ = 0;
  bool in_handler_ = false;
  obs::Hub obs_;
  // Registry-backed event counters (sim.events_fired / sim.events_cancelled);
  // created once in the constructor, bumped on the hot path.
  obs::Counter* fired_ = nullptr;
  obs::Counter* cancelled_count_ = nullptr;
  std::uint64_t digest_ = 14695981039346656037ULL;  // FNV-1a offset basis
  std::unique_ptr<EventQueue> queue_;
};

}  // namespace sv::sim
