// Discrete-event core: a clock and a (time, seq)-ordered event queue.
//
// Events with equal timestamps fire in insertion order, which — together
// with the one-process-at-a-time execution model in simulation.h — makes
// every run of a seeded experiment bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace sv::sim {

class Engine {
 public:
  using Handler = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to fire at absolute time `t` (must be >= now()).
  /// Returns an id usable with `cancel`.
  std::uint64_t schedule_at(SimTime t, Handler fn);
  /// Schedules `fn` to fire `delay` after now().
  std::uint64_t schedule(SimTime delay, Handler fn);

  /// Cancels a pending event; returns false if already fired/cancelled.
  bool cancel(std::uint64_t id);

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events_; }

  /// Pops and runs the next event; returns false if the queue is empty.
  bool step();
  /// Runs events until the queue is empty.
  void run();
  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t);

  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_events_ = 0;
  std::uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Cancelled ids are tombstoned and skipped on pop.
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace sv::sim
