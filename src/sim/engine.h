// Discrete-event core: a clock and a (time, seq)-ordered event queue.
//
// Events with equal timestamps fire in insertion order, which — together
// with the one-process-at-a-time execution model in simulation.h — makes
// every run of a seeded experiment bit-identical. The engine folds every
// fired event into an FNV-1a trace digest so replay tests can prove two
// runs executed the identical event sequence (see trace_digest()).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"
#include "obs/hub.h"

namespace sv::sim {

class Engine {
 public:
  using Handler = std::function<void()>;

  Engine();

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to fire at absolute time `t` (must be >= now()).
  /// Returns an id usable with `cancel`.
  std::uint64_t schedule_at(SimTime t, Handler fn);
  /// Schedules `fn` to fire `delay` after now().
  std::uint64_t schedule(SimTime delay, Handler fn);

  /// Cancels a pending event; returns false if already fired/cancelled
  /// (cancel-after-fire is detected exactly, not guessed).
  bool cancel(std::uint64_t id);

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events_; }

  /// Pops and runs the next event; returns false if the queue is empty.
  /// Re-entrant calls (stepping the engine from inside a handler) violate
  /// the one-event-at-a-time contract and fail an SV_ASSERT.
  bool step();
  /// Runs events until the queue is empty.
  void run();
  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t);

  [[nodiscard]] std::uint64_t events_fired() const {
    return fired_->value();
  }

  /// The simulation-wide observability bundle (tracer + metrics registry).
  /// Every layer reaches it through here; see DESIGN.md §9.
  [[nodiscard]] obs::Hub& obs() { return obs_; }
  [[nodiscard]] const obs::Hub& obs() const { return obs_; }

  /// FNV-1a hash over the (time, id) pairs of every fired event, in firing
  /// order. Two runs of the same seeded experiment must produce identical
  /// digests; see tests/integration/determinism_replay_test.cc.
  [[nodiscard]] std::uint64_t trace_digest() const { return digest_; }

  // ---- White-box introspection (tests only) ----
  /// Number of tombstoned (cancelled but not yet popped) events. Bounded by
  /// pending(); must drain to zero as the queue empties.
  [[nodiscard]] std::size_t tombstone_count() const {
    return cancelled_.size();
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Marks `ev` fired: updates bookkeeping, clock and trace digest.
  void note_fired(const Event& ev);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_events_ = 0;
  bool in_handler_ = false;
  obs::Hub obs_;
  // Registry-backed event counters (sim.events_fired / sim.events_cancelled);
  // created once in the constructor, bumped on the hot path.
  obs::Counter* fired_ = nullptr;
  obs::Counter* cancelled_count_ = nullptr;
  std::uint64_t digest_ = 14695981039346656037ULL;  // FNV-1a offset basis
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Ids of events currently in the queue and not cancelled. Membership makes
  // cancel() exact: cancelling a fired or unknown id is a detected no-op, so
  // neither cancelled_ nor the live-event count can drift (the seed version
  // leaked a tombstone per cancel-after-fire). Never iterated (svlint SV001);
  // membership tests only.
  std::unordered_set<std::uint64_t> pending_ids_;
  // Cancelled ids are tombstoned and skipped on pop; every tombstone
  // corresponds to an event still in queue_, so the set cannot grow beyond
  // the queue and is fully purged as the queue drains.
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace sv::sim
