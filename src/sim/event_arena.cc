#include "sim/event_arena.h"

#include "common/check.h"

namespace sv::sim {

EventArena::EventArena(obs::Registry* registry) {
  if (registry != nullptr) {
    slabs_c_ = &registry->counter("sim.arena_slabs");
    alloc_c_ = &registry->counter("sim.arena_slot_alloc");
    reuse_c_ = &registry->counter("sim.arena_slot_reuse");
    heap_c_ = &registry->counter("sim.arena_handler_heap");
  } else {
    slabs_c_ = &own_slabs_;
    alloc_c_ = &own_alloc_;
    reuse_c_ = &own_reuse_;
    heap_c_ = &own_heap_;
  }
}

EventSlot* EventArena::acquire() {
  EventSlot* slot = nullptr;
  if (free_head_ != nullptr) {
    slot = free_head_;
    free_head_ = slot->next;
    --free_;
    reuse_c_->inc();
  } else {
    const std::size_t slab = next_unused_ / kSlabSlots;
    const std::size_t offset = next_unused_ % kSlabSlots;
    if (slab == slabs_.size()) {
      slabs_.push_back(std::make_unique<EventSlot[]>(kSlabSlots));
      slabs_c_->inc();
    }
    slot = &slabs_[slab][offset];
    slot->index = static_cast<std::uint32_t>(next_unused_);
    ++next_unused_;
    alloc_c_->inc();
  }
  SV_DCHECK(!slot->live, "EventArena handed out a live slot (aliasing)");
  SV_DCHECK(!slot->fn, "recycled slot still holds a handler");
  slot->prev = nullptr;
  slot->next = nullptr;
  slot->cancelled = false;
  slot->live = true;
  ++live_;
  return slot;
}

void EventArena::release(EventSlot* slot) {
  SV_DCHECK(slot != nullptr, "EventArena::release(nullptr)");
  SV_DCHECK(slot->live, "double release of an arena slot");
  SV_DCHECK(live_ > 0, "release with no live slots");
  slot->fn.reset();
  slot->live = false;
  slot->prev = nullptr;
  slot->next = free_head_;
  free_head_ = slot;
  --live_;
  ++free_;
}

EventSlot* EventArena::slot_at(std::uint32_t index) {
  SV_DCHECK(index < next_unused_, "arena slot index out of range");
  return &slabs_[index / kSlabSlots][index % kSlabSlots];
}

IdSlotMap::IdSlotMap() {
  constexpr std::size_t kInitial = 1024;  // power of two
  keys_.assign(kInitial, 0);
  vals_.assign(kInitial, 0);
  mask_ = kInitial - 1;
  shift_ = 64 - 10;
}

void IdSlotMap::insert(std::uint64_t id, std::uint32_t slot) {
  SV_DCHECK(id != 0, "event id 0 is reserved for empty table cells");
  if ((size_ + 1) * 10 >= keys_.size() * 7) grow();  // load factor 0.7
  std::size_t i = slot_for(id);
  while (keys_[i] != 0) {
    SV_DCHECK(keys_[i] != id, "duplicate event id inserted");
    i = (i + 1) & mask_;
  }
  keys_[i] = id;
  vals_[i] = slot;
  ++size_;
}

bool IdSlotMap::erase(std::uint64_t id, std::uint32_t* slot_out) {
  if (id == 0) return false;
  std::size_t i = slot_for(id);
  while (true) {
    if (keys_[i] == 0) return false;
    if (keys_[i] == id) break;
    i = (i + 1) & mask_;
  }
  *slot_out = vals_[i];
  // Backward-shift deletion keeps probe chains contiguous without
  // tombstone markers: pull each displaced follower into the hole unless
  // its home position lies strictly after the hole.
  std::size_t hole = i;
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask_;
    if (keys_[j] == 0) break;
    const std::size_t home = slot_for(keys_[j]);
    // Distance from home to j (cyclic); the entry may move back to the
    // hole iff the hole is on its probe path.
    if (((j - home) & mask_) >= ((j - hole) & mask_)) {
      keys_[hole] = keys_[j];
      vals_[hole] = vals_[j];
      hole = j;
    }
  }
  keys_[hole] = 0;
  --size_;
  return true;
}

void IdSlotMap::grow() {
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::uint32_t> old_vals = std::move(vals_);
  const std::size_t cap = old_keys.size() * 2;
  keys_.assign(cap, 0);
  vals_.assign(cap, 0);
  mask_ = cap - 1;
  --shift_;
  size_ = 0;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] != 0) insert(old_keys[i], old_vals[i]);
  }
}

}  // namespace sv::sim
