// Simulation: the facade tying the event engine to simulated processes.
//
// Usage:
//   sim::Simulation s;
//   s.spawn("producer", [&] { s.delay(5_us); ch.send(42); });
//   s.spawn("consumer", [&] { int v = ch.recv(); });
//   s.run();
//
// Only one process runs at a time; all simulation state is single-threaded.
// Spawning, scheduling and waking are legal both from processes and from
// plain event handlers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"
#include "sim/process.h"

namespace sv::sim {

class Simulation {
 public:
  /// `queue_kind` selects the engine's event-queue implementation
  /// (DESIGN.md §12); the default timing wheel is bit-identical to the
  /// reference heap, so this only matters for differential tests/benches.
  explicit Simulation(QueueKind queue_kind = QueueKind::kTimingWheel);
  /// Destroys the simulation; any still-blocked processes are unwound via
  /// ProcessKilled so their threads join cleanly.
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Creates a process that starts at the current simulated time. Accepts
  /// move-only callables (wrapped internally; std::function requires
  /// copyability).
  template <typename F>
  Process& spawn(std::string name, F&& body) {
    if constexpr (std::is_copy_constructible_v<std::decay_t<F>>) {
      return spawn_impl(std::move(name), std::function<void()>(
                                             std::forward<F>(body)));
    } else {
      auto holder =
          std::make_shared<std::decay_t<F>>(std::forward<F>(body));
      return spawn_impl(std::move(name), [holder] { (*holder)(); });
    }
  }

  /// Schedules a plain (non-blocking) handler.
  std::uint64_t schedule(SimTime delay, std::function<void()> fn) {
    return engine_.schedule(delay, std::move(fn));
  }
  std::uint64_t schedule_at(SimTime t, std::function<void()> fn) {
    return engine_.schedule_at(t, std::move(fn));
  }
  bool cancel(std::uint64_t event_id) { return engine_.cancel(event_id); }

  [[nodiscard]] SimTime now() const { return engine_.now(); }
  [[nodiscard]] Engine& engine() { return engine_; }
  /// Observability bundle (tracer + metrics registry); see DESIGN.md §9.
  [[nodiscard]] obs::Hub& obs() { return engine_.obs(); }

  /// Starts the live-snapshot pump (DESIGN.md §15): every `period` of
  /// simulated time, obs().publish() delivers a registry snapshot to the
  /// attached sinks. The pump stops itself once it is the only pending
  /// event, so run() (which runs until the queue drains) still
  /// terminates; never installed unless a consumer asks, so runs without
  /// live snapshots keep their historical event schedule and digests.
  /// At most one pump per simulation.
  void publish_metrics_every(SimTime period);
  [[nodiscard]] bool metrics_pump_active() const { return pump_active_; }

  /// Runs until no events remain (blocked processes may still exist — that
  /// models processes waiting forever). Rethrows the first process error.
  void run();
  void run_until(SimTime t);
  void run_for(SimTime d) { run_until(now() + d); }

  // ---- Callable only from inside a process ----

  /// The currently-running process, or nullptr when in the scheduler.
  [[nodiscard]] Process* current() const { return current_; }

  /// Advances this process by `d` of simulated time.
  void delay(SimTime d);
  /// Blocks this process until some other party calls wake() on it.
  /// `reason` shows up in diagnostics for deadlocked runs.
  void block_current(const std::string& reason);
  /// Wakes a process blocked in block_current(); no-op if not blocked.
  /// The process resumes via an event at the current simulated time.
  void wake(Process& p);

  // ---- Introspection ----
  [[nodiscard]] std::size_t live_process_count() const;
  [[nodiscard]] std::vector<std::string> blocked_process_names() const;
  [[nodiscard]] bool shutting_down() const { return shutting_down_; }
  [[nodiscard]] std::uint64_t events_fired() const {
    return engine_.events_fired();
  }

 private:
  friend class Process;

  Process& spawn_impl(std::string name, std::function<void()> body);
  void resume(Process& p);
  void check_current_killed();
  void pump_snapshot(SimTime period);

  Engine engine_;
  bool pump_active_ = false;
  std::vector<std::unique_ptr<Process>> processes_;
  Process* current_ = nullptr;
  std::uint64_t next_process_id_ = 1;
  bool shutting_down_ = false;
  bool running_ = false;
};

}  // namespace sv::sim
