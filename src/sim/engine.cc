#include "sim/engine.h"

#include "common/check.h"

namespace sv::sim {
namespace {

/// RAII re-entrancy guard: handlers may schedule/cancel but must not pump
/// the engine themselves (that would interleave two events "at once" and
/// break deterministic ordering).
class HandlerScope {
 public:
  explicit HandlerScope(bool* flag) : flag_(flag) { *flag_ = true; }
  ~HandlerScope() { *flag_ = false; }
  HandlerScope(const HandlerScope&) = delete;
  HandlerScope& operator=(const HandlerScope&) = delete;

 private:
  bool* flag_;
};

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xffULL)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

}  // namespace

Engine::Engine(QueueKind queue_kind)
    : fired_(&obs_.registry.counter("sim.events_fired")),
      cancelled_count_(&obs_.registry.counter("sim.events_cancelled")),
      queue_(make_event_queue(queue_kind, &obs_.registry)) {}

std::uint64_t Engine::schedule_at(SimTime t, Handler fn) {
  SV_ASSERT(t >= now_, "Engine::schedule_at: time in the past (t=" +
                           t.to_string() + " now=" + now_.to_string() + ")");
  const std::uint64_t id = next_id_++;
  queue_->push(t, next_seq_++, id, std::move(fn));
  ++live_events_;
  return id;
}

std::uint64_t Engine::schedule(SimTime delay, Handler fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(std::uint64_t id) {
  if (!queue_->cancel(id)) return false;
  SV_DCHECK(live_events_ > 0, "cancel with no live events");
  --live_events_;
  cancelled_count_->inc();
  return true;
}

void Engine::note_fired(SimTime t, std::uint64_t id) {
  SV_DCHECK(t >= now_, "event queue returned a past event");
  now_ = t;
  --live_events_;
  fired_->inc();
  digest_ = fnv1a_mix(digest_, static_cast<std::uint64_t>(t.ns()));
  digest_ = fnv1a_mix(digest_, id);
}

bool Engine::step() {
  SV_ASSERT(!in_handler_,
            "re-entrant Engine::step/run from inside an event handler");
  FiredEvent ev;
  if (!queue_->pop(SimTime::max(), &ev)) return false;
  note_fired(ev.time, ev.id);
  {
    HandlerScope scope(&in_handler_);
    ev.fn();
  }
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime t) {
  SV_ASSERT(!in_handler_,
            "re-entrant Engine::run_until from inside an event handler");
  FiredEvent ev;
  while (queue_->pop(t, &ev)) {
    note_fired(ev.time, ev.id);
    {
      HandlerScope scope(&in_handler_);
      ev.fn();
    }
  }
  if (now_ < t) now_ = t;
}

}  // namespace sv::sim
