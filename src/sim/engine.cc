#include "sim/engine.h"

#include <cassert>
#include <stdexcept>

namespace sv::sim {

std::uint64_t Engine::schedule_at(SimTime t, Handler fn) {
  if (t < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(fn)});
  ++live_events_;
  return id;
}

std::uint64_t Engine::schedule(SimTime delay, Handler fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(std::uint64_t id) {
  if (id == 0 || id >= next_id_) return false;
  // Only mark ids that are still pending; we cannot cheaply check membership
  // in the heap, so callers may only cancel ids they know are pending.
  const auto [_, inserted] = cancelled_.insert(id);
  if (!inserted) return false;
  if (live_events_ == 0) return false;
  --live_events_;
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    --live_events_;
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime t) {
  while (!queue_.empty()) {
    // Peek: skip tombstones without advancing the clock.
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    --live_events_;
    ++fired_;
    ev.fn();
  }
  if (now_ < t) now_ = t;
}

}  // namespace sv::sim
