#include "sim/engine.h"

#include "common/check.h"

namespace sv::sim {
namespace {

/// RAII re-entrancy guard: handlers may schedule/cancel but must not pump
/// the engine themselves (that would interleave two events "at once" and
/// break deterministic ordering).
class HandlerScope {
 public:
  explicit HandlerScope(bool* flag) : flag_(flag) { *flag_ = true; }
  ~HandlerScope() { *flag_ = false; }
  HandlerScope(const HandlerScope&) = delete;
  HandlerScope& operator=(const HandlerScope&) = delete;

 private:
  bool* flag_;
};

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xffULL)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

}  // namespace

Engine::Engine()
    : fired_(&obs_.registry.counter("sim.events_fired")),
      cancelled_count_(&obs_.registry.counter("sim.events_cancelled")) {}

std::uint64_t Engine::schedule_at(SimTime t, Handler fn) {
  SV_ASSERT(t >= now_, "Engine::schedule_at: time in the past (t=" +
                           t.to_string() + " now=" + now_.to_string() + ")");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  ++live_events_;
  return id;
}

std::uint64_t Engine::schedule(SimTime delay, Handler fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(std::uint64_t id) {
  // Exact membership test: ids that already fired (or were never issued)
  // are rejected without touching any bookkeeping.
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  SV_DCHECK(live_events_ > 0, "cancel with no live events");
  --live_events_;
  cancelled_count_->inc();
  return true;
}

void Engine::note_fired(const Event& ev) {
  SV_DCHECK(ev.time >= now_, "event queue returned a past event");
  now_ = ev.time;
  pending_ids_.erase(ev.id);
  --live_events_;
  fired_->inc();
  digest_ = fnv1a_mix(digest_, static_cast<std::uint64_t>(ev.time.ns()));
  digest_ = fnv1a_mix(digest_, ev.id);
}

bool Engine::step() {
  SV_ASSERT(!in_handler_,
            "re-entrant Engine::step/run from inside an event handler");
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    // Purge tombstones on pop so cancelled_ never outlives its event.
    if (cancelled_.erase(ev.id) != 0) continue;
    note_fired(ev);
    {
      HandlerScope scope(&in_handler_);
      ev.fn();
    }
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime t) {
  SV_ASSERT(!in_handler_,
            "re-entrant Engine::run_until from inside an event handler");
  while (!queue_.empty()) {
    // Peek: stop at the boundary first, then skip tombstones without
    // advancing the clock. Tombstones beyond t stay queued until the clock
    // actually reaches them (lazy purge keeps run_until O(events <= t)).
    const Event& top = queue_.top();
    if (top.time > t) break;
    if (cancelled_.erase(top.id) != 0) {
      queue_.pop();
      continue;
    }
    Event ev = queue_.top();
    queue_.pop();
    note_fired(ev);
    {
      HandlerScope scope(&in_handler_);
      ev.fn();
    }
  }
  if (now_ < t) now_ = t;
}

}  // namespace sv::sim
