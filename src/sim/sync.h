// Simulated synchronization primitives built on Simulation::block/wake.
//
// All primitives are condition-variable style: a woken waiter re-checks its
// predicate, so these compose safely even with multiple producers/consumers.
// FIFO wake order keeps runs deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/result.h"
#include "sim/simulation.h"

namespace sv::sim {

/// A FIFO queue of blocked processes; the building block for conditions,
/// semaphores and channels.
class WaitQueue {
 public:
  explicit WaitQueue(Simulation* sim, std::string name = "waitq")
      : sim_(sim), name_(std::move(name)) {}

  /// Blocks the calling process until notified.
  void wait();
  /// Blocks until notified or until `timeout` elapses.
  /// Returns true if notified, false on timeout.
  bool wait_for(SimTime timeout);

  /// Wakes the oldest waiter; returns false if none.
  bool notify_one();
  /// Wakes all current waiters.
  void notify_all();

  [[nodiscard]] std::size_t waiter_count() const;
  [[nodiscard]] bool has_waiters() const { return waiter_count() > 0; }

 private:
  struct Entry {
    Process* proc = nullptr;
    bool notified = false;
    bool done = false;  // true once notified or timed out
  };

  void scrub();

  Simulation* sim_;
  std::string name_;
  std::deque<std::shared_ptr<Entry>> entries_;
};

/// Counting semaphore with FIFO handoff.
class Semaphore {
 public:
  Semaphore(Simulation* sim, std::int64_t initial, std::string name = "sem")
      : count_(initial), queue_(sim, std::move(name)) {}

  void acquire();
  /// Non-blocking acquire; true on success.
  bool try_acquire();
  void release();

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::size_t waiter_count() const {
    return queue_.waiter_count();
  }

 private:
  std::int64_t count_;
  WaitQueue queue_;
};

/// Bounded (or unbounded with capacity 0 meaning "no limit") FIFO channel.
/// send() blocks while full; recv() blocks while empty. close() makes
/// further recv() calls drain remaining items then return nullopt.
template <typename T>
class Channel {
 public:
  Channel(Simulation* sim, std::size_t capacity, std::string name = "chan")
      : sim_(sim),
        capacity_(capacity),
        name_(std::move(name)),
        senders_(sim, name_ + ".send"),
        receivers_(sim, name_ + ".recv") {}

  /// Blocks while the channel is full. Throws if the channel is closed.
  void send(T item) {
    while (capacity_ != 0 && items_.size() >= capacity_ && !closed_) {
      senders_.wait();
    }
    if (closed_) {
      throw std::logic_error("Channel[" + name_ + "]: send after close");
    }
    items_.push_back(std::move(item));
    receivers_.notify_one();
  }

  /// Non-blocking send; false if full or closed.
  bool try_send(T item) {
    if (closed_) return false;
    if (capacity_ != 0 && items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    receivers_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> recv() {
    while (items_.empty() && !closed_) {
      receivers_.wait();
    }
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    senders_.notify_one();
    return item;
  }

  /// Timed receive: like recv() but gives up after `timeout` with an
  /// ErrorCode::kTimeout error. ok(nullopt) still means closed-and-drained;
  /// `timeout` <= 0 means wait forever.
  [[nodiscard]] Result<std::optional<T>> recv_for(SimTime timeout) {
    if (timeout <= SimTime::zero()) return recv();
    const SimTime deadline = sim_->now() + timeout;
    while (items_.empty() && !closed_) {
      const SimTime remaining = deadline - sim_->now();
      if (remaining <= SimTime::zero() || !receivers_.wait_for(remaining)) {
        if (!items_.empty() || closed_) break;  // raced with a late arrival
        return Error::timeout("Channel[" + name_ + "]: recv timed out after " +
                              timeout.to_string());
      }
    }
    if (items_.empty()) return std::optional<T>{};  // closed and drained
    std::optional<T> item = std::move(items_.front());
    items_.pop_front();
    senders_.notify_one();
    return item;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    senders_.notify_one();
    return item;
  }

  /// Marks the channel closed; wakes all blocked parties.
  void close() {
    closed_ = true;
    receivers_.notify_all();
    senders_.notify_all();
  }

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  Simulation* sim_;
  std::size_t capacity_;
  std::string name_;
  std::deque<T> items_;
  bool closed_ = false;
  WaitQueue senders_;
  WaitQueue receivers_;
};

}  // namespace sv::sim
