// Structured event tracer: ring-buffered spans and instant events with
// sim-time timestamps.
//
// Two export forms (DESIGN.md §9):
//   * Chrome trace_event JSON ("X" complete spans / "i" instants) for
//     chrome://tracing or Perfetto, and
//   * a canonical deterministic text form — one line per event in record
//     order, integers only — which golden-trace tests diff byte-for-byte.
//
// Cost model: recording is passive. The tracer never schedules events,
// never reads wall clocks, and never perturbs simulated time, so enabling
// it cannot change sim results or Engine::trace_digest(). When disabled at
// runtime each call is one branch; when compiled out (SV_TRACE=OFF, which
// defines SV_TRACE_ENABLED=0) the inline bodies are empty and the
// optimiser erases call sites entirely.
//
// Event names are interned as "category.name" strings; the ring buffer
// holds fixed-size PODs, and once full the oldest events are overwritten
// (dropped() reports how many).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

#ifndef SV_TRACE_ENABLED
#define SV_TRACE_ENABLED 1
#endif

namespace sv::obs {

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// Starts recording into a ring of `capacity` events (replaces any
  /// previously recorded events' eviction budget, keeps existing ones).
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool enabled() const {
#if SV_TRACE_ENABLED
    return enabled_;
#else
    return false;
#endif
  }

  /// Records a completed span [start, end] attributed to `node`.
  void span(SimTime start, SimTime end, int node, std::string_view category,
            std::string_view name, std::uint64_t arg = 0) {
#if SV_TRACE_ENABLED
    if (enabled_) record(start, end - start, node, category, name,
                         /*instant=*/false, arg);
#else
    (void)start, (void)end, (void)node, (void)category, (void)name, (void)arg;
#endif
  }

  /// Records a point event at `ts` attributed to `node`.
  void instant(SimTime ts, int node, std::string_view category,
               std::string_view name, std::uint64_t arg = 0) {
#if SV_TRACE_ENABLED
    if (enabled_) record(ts, SimTime::zero(), node, category, name,
                         /*instant=*/true, arg);
#else
    (void)ts, (void)node, (void)category, (void)name, (void)arg;
#endif
  }

  /// Events currently held in the ring.
  [[nodiscard]] std::size_t size() const;
  /// Events evicted because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Chrome trace_event JSON (object form, {"traceEvents": [...]}).
  void write_chrome_json(std::ostream& os) const;
  /// Canonical text: header line then `<ts_ns> <dur_ns> n<node> <name> <arg>`
  /// per event in record order. Integers only; stable across platforms.
  void write_canonical(std::ostream& os) const;
  [[nodiscard]] std::string canonical() const;

 private:
  struct Event {
    std::int64_t ts_ns;
    std::int64_t dur_ns;
    std::int32_t node;
    std::uint32_t name_id;
    bool instant;
    std::uint64_t arg;
  };

  void record(SimTime ts, SimTime dur, int node, std::string_view category,
              std::string_view name, bool instant, std::uint64_t arg);
  std::uint32_t intern(std::string_view category, std::string_view name);
  /// Applies `fn` to events oldest-first (handles ring wraparound).
  template <typename Fn>
  void for_each(Fn&& fn) const;

  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t next_ = 0;  // ring write cursor once events_ is full
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::vector<std::string> names_;  // id -> "category.name"
  // Ordered map: interning order does not affect exports (ids resolve back
  // to strings), but keep it value-determined anyway per DESIGN.md §8.
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
};

}  // namespace sv::obs
