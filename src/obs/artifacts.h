// Artifact destinations for a run's observability output: a Chrome
// trace_event JSON of the tracer ring and/or a JSON snapshot of the
// metrics registry. Lives in obs (not the bench harness) so mid-stack
// experiment drivers (e.g. viz::run_load_balance) can carry destinations
// in their config structs without depending on the CLI layer.
#pragma once

#include <string>

#include "obs/hub.h"

namespace sv::obs {

struct Artifacts {
  /// Chrome trace_event JSON (load in chrome://tracing or Perfetto);
  /// empty = don't write.
  std::string trace_path;
  /// Registry::write_json snapshot; empty = don't write.
  std::string metrics_path;

  [[nodiscard]] bool any() const {
    return !trace_path.empty() || !metrics_path.empty();
  }
  [[nodiscard]] bool want_trace() const { return !trace_path.empty(); }
};

/// Turns the hub's tracer on when a trace artifact is requested. Call
/// before traffic starts; tracing is passive, so this cannot change
/// simulated results (DESIGN.md §9).
void begin_artifacts(Hub& hub, const Artifacts& artifacts);

/// Writes the requested artifacts; throws std::runtime_error when a
/// destination cannot be opened or written.
void export_artifacts(const Hub& hub, const Artifacts& artifacts);

}  // namespace sv::obs
