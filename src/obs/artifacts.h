// Artifact destinations for a run's observability output: a Chrome
// trace_event JSON of the tracer ring and/or a JSON snapshot of the
// metrics registry. Lives in obs (not the bench harness) so mid-stack
// experiment drivers (e.g. viz::run_load_balance) can carry destinations
// in their config structs without depending on the CLI layer.
#pragma once

#include <cstdint>
#include <string>

#include "obs/hub.h"

namespace sv::obs {

struct Artifacts {
  /// Chrome trace_event JSON (load in chrome://tracing or Perfetto);
  /// empty = don't write.
  std::string trace_path;
  /// Registry::write_json snapshot; empty = don't write.
  std::string metrics_path;
  /// Live mid-run snapshots: every this many simulated milliseconds, a
  /// numbered registry snapshot `<metrics_path>.NNNN` is written in
  /// addition to the final `metrics_path`. 0 = off (post-mortem only).
  /// Snapshot cadence is sim time, so same-seed replays write
  /// byte-identical files. Requires metrics_path.
  std::int64_t metrics_every_ms = 0;

  [[nodiscard]] bool any() const {
    return !trace_path.empty() || !metrics_path.empty();
  }
  [[nodiscard]] bool want_trace() const { return !trace_path.empty(); }
  [[nodiscard]] bool want_live_metrics() const {
    return metrics_every_ms > 0 && !metrics_path.empty();
  }
};

/// Snapshot sink that writes each publish as `<base_path>.NNNN` (NNNN =
/// zero-padded publish sequence). Content is Registry::write_json, so the
/// files are deterministic and diffable across same-seed replays.
class SnapshotFileWriter final : public SnapshotSink {
 public:
  explicit SnapshotFileWriter(std::string base_path);
  void on_snapshot(const Snapshot& snap) override;

 private:
  std::string base_path_;
};

/// Turns the hub's tracer on when a trace artifact is requested. Call
/// before traffic starts; tracing is passive, so this cannot change
/// simulated results (DESIGN.md §9).
void begin_artifacts(Hub& hub, const Artifacts& artifacts);

/// Writes the requested artifacts; throws std::runtime_error when a
/// destination cannot be opened or written.
void export_artifacts(const Hub& hub, const Artifacts& artifacts);

}  // namespace sv::obs
