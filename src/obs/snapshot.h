// Live metric snapshots (DESIGN.md §15).
//
// The registry was post-mortem: metrics accumulated silently and were
// serialised once at exit. Following the Open MPI SPC design (attachable
// performance counters, periodic snapshots, external-tool access), this
// header makes the registry observable *during* a run:
//
//   SnapshotSink   the attach/detach interface. A sink receives a Snapshot
//                  (sim time + publish sequence + registry pointer) at
//                  every publish. Sinks must be passive observers OR
//                  deterministic controllers — they run inside the
//                  simulation's event loop, so anything they do is part of
//                  the replayed schedule.
//   CounterWindow  delta view over one counter: how much it moved since
//                  the previous publish (rate = delta / window).
//   HistogramWindow delta view over one histogram's buckets, with p50/p99
//                  estimated from the *window's* bucket deltas — not the
//                  run-to-date distribution, which an SLO controller must
//                  not average against.
//
// Zero cost when detached: Hub::publish() is only ever scheduled when a
// consumer asked for it (sim::Simulation::publish_metrics_every), and a
// publish with no sinks is a no-op. A run with no snapshot consumer
// executes the exact event schedule it always did, so every pre-existing
// digest pin stays bit-identical.
//
// Determinism: windows are pure functions of the counter values at publish
// times, publish times are sim-time driven, and quantile estimation is
// integer-only (bucket upper bounds), so two same-seed runs see identical
// window sequences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace sv::obs {

/// One published point-in-time view of the registry.
struct Snapshot {
  /// Simulated time of the publish (never wall clock).
  SimTime at{};
  /// 0-based publish index within the run.
  std::uint64_t seq = 0;
  /// The live registry; valid only for the duration of on_snapshot().
  const Registry* registry = nullptr;
};

/// Attachable snapshot consumer (file writer, SLO controller, test probe).
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  virtual void on_snapshot(const Snapshot& snap) = 0;
};

/// Windowed delta view over one counter. Binding is lazy: a controller can
/// watch a name before the metric exists; advance() reports 0 until the
/// counter appears (rebind() re-resolves).
class CounterWindow {
 public:
  CounterWindow() = default;

  /// Points the window at `counter` (may be null). The first advance()
  /// after a bind reports the delta from the bind-time value.
  void bind(const Counter* counter) {
    counter_ = counter;
    last_ = counter_ != nullptr ? counter_->value() : 0;
  }
  [[nodiscard]] bool bound() const { return counter_ != nullptr; }

  /// Delta since the previous advance() (or bind()).
  std::uint64_t advance() {
    if (counter_ == nullptr) return 0;
    const std::uint64_t v = counter_->value();
    const std::uint64_t delta = v - last_;
    last_ = v;
    return delta;
  }

 private:
  const Counter* counter_ = nullptr;
  std::uint64_t last_ = 0;
};

/// Windowed delta view over one histogram: per-window sample count, sum
/// and integer quantile estimates from the bucket deltas.
class HistogramWindow {
 public:
  HistogramWindow() = default;

  void bind(const Histogram* hist);
  [[nodiscard]] bool bound() const { return hist_ != nullptr; }

  /// Captures the deltas since the previous advance(); returns the number
  /// of new observations in the window.
  std::uint64_t advance();

  /// Observations in the last captured window.
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Sum of observations in the last captured window.
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  /// Bucket deltas of the last captured window (bounds().size() + 1
  /// entries; the last is the overflow bucket).
  [[nodiscard]] const std::vector<std::uint64_t>& deltas() const {
    return deltas_;
  }

  /// Quantile estimate from the window's bucket deltas: the upper bound of
  /// the bucket containing the q-th percentile sample (nearest-rank over
  /// buckets; integer-only, so replays agree bit-for-bit). The overflow
  /// bucket reports 2x the largest finite bound — deliberately pessimistic
  /// so an SLO comparison treats off-scale latency as a violation. Returns
  /// 0 when the window saw no samples.
  [[nodiscard]] std::int64_t percentile(int q) const;

  /// Merges another window's deltas into this one (cluster-level quantiles
  /// from per-node histograms). Bounds must match; empty windows merge
  /// into anything.
  void merge(const HistogramWindow& other);

 private:
  const Histogram* hist_ = nullptr;
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> last_buckets_;
  std::vector<std::uint64_t> deltas_;
  std::uint64_t last_count_ = 0;
  std::int64_t last_sum_ = 0;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
};

}  // namespace sv::obs
