#include "obs/artifacts.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace sv::obs {
namespace {

void write_file(const std::string& path, const std::string& what,
                const std::function<void(std::ostream&)>& emit) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("obs: cannot open " + what + " destination '" +
                             path + "'");
  }
  emit(os);
  if (!os) {
    throw std::runtime_error("obs: failed writing " + what + " to '" + path +
                             "'");
  }
}

}  // namespace

SnapshotFileWriter::SnapshotFileWriter(std::string base_path)
    : base_path_(std::move(base_path)) {}

void SnapshotFileWriter::on_snapshot(const Snapshot& snap) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%04llu",
                static_cast<unsigned long long>(snap.seq));
  write_file(base_path_ + suffix, "metrics snapshot", [&](std::ostream& os) {
    snap.registry->write_json(os);
  });
}

void begin_artifacts(Hub& hub, const Artifacts& artifacts) {
  if (artifacts.want_trace()) hub.tracer.enable();
  if (artifacts.want_live_metrics()) {
    hub.adopt(std::make_unique<SnapshotFileWriter>(artifacts.metrics_path));
  }
}

void export_artifacts(const Hub& hub, const Artifacts& artifacts) {
  if (!artifacts.trace_path.empty()) {
    write_file(artifacts.trace_path, "trace", [&](std::ostream& os) {
      hub.tracer.write_chrome_json(os);
    });
  }
  if (!artifacts.metrics_path.empty()) {
    write_file(artifacts.metrics_path, "metrics", [&](std::ostream& os) {
      hub.registry.write_json(os);
    });
  }
}

}  // namespace sv::obs
