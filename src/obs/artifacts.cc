#include "obs/artifacts.h"

#include <fstream>
#include <functional>
#include <ostream>
#include <stdexcept>

namespace sv::obs {
namespace {

void write_file(const std::string& path, const std::string& what,
                const std::function<void(std::ostream&)>& emit) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("obs: cannot open " + what + " destination '" +
                             path + "'");
  }
  emit(os);
  if (!os) {
    throw std::runtime_error("obs: failed writing " + what + " to '" + path +
                             "'");
  }
}

}  // namespace

void begin_artifacts(Hub& hub, const Artifacts& artifacts) {
  if (artifacts.want_trace()) hub.tracer.enable();
}

void export_artifacts(const Hub& hub, const Artifacts& artifacts) {
  if (!artifacts.trace_path.empty()) {
    write_file(artifacts.trace_path, "trace", [&](std::ostream& os) {
      hub.tracer.write_chrome_json(os);
    });
  }
  if (!artifacts.metrics_path.empty()) {
    write_file(artifacts.metrics_path, "metrics", [&](std::ostream& os) {
      hub.registry.write_json(os);
    });
  }
}

}  // namespace sv::obs
