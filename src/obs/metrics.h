// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// This is the single home for every statistic the simulator keeps
// (DESIGN.md §9). Modules obtain a stable pointer to a metric once
// (`registry.counter("tcpstack.retx{conn=n0.tcp1}")`) and bump it on the
// hot path; `Registry::snapshot()` serialises everything as JSON with
// deterministic (lexicographic) ordering, so two runs of the same seeded
// experiment emit byte-identical snapshots.
//
// Naming convention is Prometheus-flavoured: `component.metric` optionally
// followed by `{label=value}`, e.g. `fault.frames_dropped{link=0->1}`.
// Unlike Prometheus, the full string is the key: the registry does not
// parse labels, it only sorts names.
//
// Determinism notes: metrics are owned via std::map (ordered, SV001-safe)
// and all values are integers — no floating point enters the snapshot, so
// the output is platform-stable and safe to diff in golden tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sv::obs {

/// Monotonic integer count. Pointers returned by Registry::counter() are
/// stable for the registry's lifetime.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level (queue depth, bytes in flight). Tracks the running
/// maximum so a snapshot preserves the high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(std::int64_t delta) { set(value_ + delta); }
  [[nodiscard]] std::int64_t value() const { return value_; }
  [[nodiscard]] std::int64_t max_value() const { return max_; }

  /// Returns the high-water mark, then re-arms it to the current level so
  /// the next window reports its own peak. Without the re-arm a windowed
  /// view would report the all-time maximum forever (the bug live
  /// snapshots exposed): one early burst would pin every later window's
  /// "peak" at the burst value.
  std::int64_t read_and_rearm_max() {
    const std::int64_t peak = max_;
    max_ = value_;
    return peak;
  }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// Fixed-bound histogram: bucket i counts observations <= bounds[i]; one
/// extra overflow bucket counts the rest. Bounds are fixed at creation so
/// every run buckets identically.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
};

/// Owns every metric by name. Lookup creates on first use; the returned
/// references remain valid for the registry's lifetime (node-based map).
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is honoured only on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds = time_bounds_ns());

  /// Read-only lookups (nullptr when absent) for tests and exporters.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Convenience: counter value, or 0 when the counter was never created.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Sum of every counter whose name starts with `prefix` (aggregating
  /// labelled families, e.g. "fault.frames_dropped{").
  [[nodiscard]] std::uint64_t sum_counters(const std::string& prefix) const;

  /// Deterministic JSON: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with names in lexicographic order and integer values only.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string snapshot() const;

  /// Decade buckets in nanoseconds: 1us, 10us, ... 1s (+ overflow).
  [[nodiscard]] static std::vector<std::int64_t> time_bounds_ns();
  /// Power-of-4 buckets in bytes: 64B ... 16MiB (+ overflow).
  [[nodiscard]] static std::vector<std::int64_t> size_bounds_bytes();

 private:
  // Ordered maps: snapshot iteration order is name-determined (SV001-safe)
  // and unique_ptr nodes keep metric addresses stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sv::obs
