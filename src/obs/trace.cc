#include "obs/trace.h"

#include <ostream>
#include <sstream>

namespace sv::obs {

void Tracer::enable(std::size_t capacity) {
#if SV_TRACE_ENABLED
  enabled_ = true;
  if (capacity == 0) capacity = 1;
  if (capacity != capacity_) {
    // Resizing the ring invalidates the wrap cursor; keep existing events
    // only when they still fit un-wrapped.
    if (events_.size() > capacity || next_ != 0) clear();
    capacity_ = capacity;
  }
#else
  (void)capacity;
#endif
}

void Tracer::disable() { enabled_ = false; }

std::size_t Tracer::size() const { return events_.size(); }

void Tracer::clear() {
  events_.clear();
  next_ = 0;
  dropped_ = 0;
}

void Tracer::record(SimTime ts, SimTime dur, int node,
                    std::string_view category, std::string_view name,
                    bool instant, std::uint64_t arg) {
  Event ev{ts.ns(), dur.ns(), node, intern(category, name),
           instant, arg};
  if (events_.size() < capacity_) {
    events_.push_back(ev);
    return;
  }
  // Ring full: overwrite oldest. next_ is the oldest slot once wrapped.
  events_[next_] = ev;
  next_ = (next_ + 1) % capacity_;
  dropped_ += 1;
}

std::uint32_t Tracer::intern(std::string_view category, std::string_view name) {
  std::string full;
  full.reserve(category.size() + name.size() + 1);
  full.append(category);
  full.push_back('.');
  full.append(name);
  auto it = name_ids_.find(full);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(full);
  name_ids_.emplace(std::move(full), id);
  return id;
}

template <typename Fn>
void Tracer::for_each(Fn&& fn) const {
  if (events_.size() < capacity_ || events_.empty()) {
    for (const Event& ev : events_) fn(ev);
    return;
  }
  for (std::size_t i = 0; i < events_.size(); ++i) {
    fn(events_[(next_ + i) % events_.size()]);
  }
}

namespace {

// Chrome's "ts"/"dur" fields are microseconds; emit ns-precise values as
// a zero-padded decimal fraction (no floating point anywhere).
void write_us(std::ostream& os, std::int64_t ns) {
  const std::int64_t frac = ns % 1000;
  os << ns / 1000 << '.' << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\": [";
  const char* sep = "";
  for_each([&](const Event& ev) {
    const std::string& full = names_[ev.name_id];
    const auto dot = full.find('.');
    os << sep << "\n  {\"name\": \"" << full.substr(dot + 1)
       << "\", \"cat\": \"" << full.substr(0, dot) << "\", \"ph\": \""
       << (ev.instant ? "i" : "X") << "\", \"pid\": 0, \"tid\": " << ev.node
       << ", \"ts\": ";
    write_us(os, ev.ts_ns);
    if (!ev.instant) {
      os << ", \"dur\": ";
      write_us(os, ev.dur_ns);
    } else {
      os << ", \"s\": \"t\"";
    }
    os << ", \"args\": {\"v\": " << ev.arg << "}}";
    sep = ",";
  });
  os << "\n], \"displayTimeUnit\": \"ns\"}\n";
}

void Tracer::write_canonical(std::ostream& os) const {
  os << "# svtrace v1 events=" << events_.size() << " dropped=" << dropped_
     << "\n";
  for_each([&](const Event& ev) {
    os << ev.ts_ns << ' ' << ev.dur_ns << " n" << ev.node << ' '
       << names_[ev.name_id] << ' ' << ev.arg << "\n";
  });
}

std::string Tracer::canonical() const {
  std::ostringstream os;
  write_canonical(os);
  return os.str();
}

}  // namespace sv::obs
