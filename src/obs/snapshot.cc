#include "obs/snapshot.h"

#include "common/check.h"

namespace sv::obs {

void HistogramWindow::bind(const Histogram* hist) {
  hist_ = hist;
  count_ = 0;
  sum_ = 0;
  if (hist_ == nullptr) {
    bounds_.clear();
    last_buckets_.clear();
    deltas_.clear();
    last_count_ = 0;
    last_sum_ = 0;
    return;
  }
  bounds_ = hist_->bounds();
  last_buckets_ = hist_->buckets();
  deltas_.assign(last_buckets_.size(), 0);
  last_count_ = hist_->count();
  last_sum_ = hist_->sum();
}

std::uint64_t HistogramWindow::advance() {
  if (hist_ == nullptr) {
    count_ = 0;
    sum_ = 0;
    return 0;
  }
  const std::vector<std::uint64_t>& now = hist_->buckets();
  SV_ASSERT(now.size() == last_buckets_.size(),
            "HistogramWindow: histogram bucket count changed under a window");
  for (std::size_t i = 0; i < now.size(); ++i) {
    deltas_[i] = now[i] - last_buckets_[i];
    last_buckets_[i] = now[i];
  }
  count_ = hist_->count() - last_count_;
  sum_ = hist_->sum() - last_sum_;
  last_count_ = hist_->count();
  last_sum_ = hist_->sum();
  return count_;
}

std::int64_t HistogramWindow::percentile(int q) const {
  SV_ASSERT(q >= 0 && q <= 100, "HistogramWindow::percentile: q in [0,100]");
  if (count_ == 0) return 0;
  // Nearest-rank: the smallest bucket whose cumulative delta covers
  // ceil(q/100 * count) samples. Integer arithmetic throughout.
  const std::uint64_t rank =
      (count_ * static_cast<std::uint64_t>(q) + 99) / 100;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < deltas_.size(); ++i) {
    cum += deltas_[i];
    if (cum >= rank) {
      if (i < bounds_.size()) return bounds_[i];
      // Overflow bucket: report past the scale, pessimistically.
      return bounds_.empty() ? 0 : bounds_.back() * 2;
    }
  }
  return bounds_.empty() ? 0 : bounds_.back() * 2;
}

void HistogramWindow::merge(const HistogramWindow& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 && deltas_.size() != other.deltas_.size()) {
    bounds_ = other.bounds_;
    deltas_ = other.deltas_;
    count_ = other.count_;
    sum_ = other.sum_;
    return;
  }
  SV_ASSERT(deltas_.size() == other.deltas_.size() && bounds_ == other.bounds_,
            "HistogramWindow::merge: mismatched bucket bounds");
  for (std::size_t i = 0; i < deltas_.size(); ++i) {
    deltas_[i] += other.deltas_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace sv::obs
