#include "obs/metrics.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace sv::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  SV_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
            "histogram bounds must be sorted ascending");
}

void Histogram::observe(std::int64_t v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  count_ += 1;
  sum_ += v;
}

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::int64_t> bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

std::uint64_t Registry::sum_counters(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += it->second->value();
  }
  return total;
}

namespace {

// Metric names may contain '>', '{', '='; none need JSON escaping, but
// quote and backslash do for safety.
void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  const char* sep = "";
  for (const auto& [name, c] : counters_) {
    os << sep << "\n    ";
    write_json_string(os, name);
    os << ": " << c->value();
    sep = ",";
  }
  os << "\n  },\n  \"gauges\": {";
  sep = "";
  for (const auto& [name, g] : gauges_) {
    os << sep << "\n    ";
    write_json_string(os, name);
    os << ": {\"value\": " << g->value() << ", \"max\": " << g->max_value()
       << "}";
    sep = ",";
  }
  os << "\n  },\n  \"histograms\": {";
  sep = "";
  for (const auto& [name, h] : histograms_) {
    os << sep << "\n    ";
    write_json_string(os, name);
    os << ": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"bounds\": [";
    const char* bsep = "";
    for (std::int64_t b : h->bounds()) {
      os << bsep << b;
      bsep = ", ";
    }
    os << "], \"buckets\": [";
    bsep = "";
    for (std::uint64_t b : h->buckets()) {
      os << bsep << b;
      bsep = ", ";
    }
    os << "]}";
    sep = ",";
  }
  os << "\n  }\n}\n";
}

std::string Registry::snapshot() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::vector<std::int64_t> Registry::time_bounds_ns() {
  return {1'000,       10'000,        100'000,        1'000'000,
          10'000'000,  100'000'000,   1'000'000'000};
}

std::vector<std::int64_t> Registry::size_bounds_bytes() {
  return {64,      256,       1'024,     4'096,      16'384,
          65'536,  262'144,   1'048'576, 4'194'304,  16'777'216};
}

}  // namespace sv::obs
