// The per-simulation observability bundle: one Tracer + one Registry,
// owned by sim::Engine and reachable as `sim.obs()` from any layer.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sv::obs {

struct Hub {
  Tracer tracer;
  Registry registry;
};

}  // namespace sv::obs
