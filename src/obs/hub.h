// The per-simulation observability bundle: one Tracer + one Registry,
// owned by sim::Engine and reachable as `sim.obs()` from any layer — plus
// the live-snapshot attach point (DESIGN.md §15). Sinks attached here
// receive a Snapshot at every publish; with no sinks and no publisher the
// hub behaves exactly as it always did (post-mortem only), so detached
// runs stay bit-identical.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace sv::obs {

struct Hub {
  Tracer tracer;
  Registry registry;

  /// Attaches a snapshot consumer (not owned; detach before it dies).
  /// Sinks are notified in attach order — part of the determinism
  /// contract, since a sink may be a controller whose actions feed back
  /// into the schedule.
  void attach(SnapshotSink* sink) { sinks_.push_back(sink); }

  /// Detaches a previously attached sink; no-op if absent.
  void detach(SnapshotSink* sink) {
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
                 sinks_.end());
  }

  /// Attaches a sink the hub owns for the rest of the run (file writers
  /// the harness fire-and-forgets).
  void adopt(std::unique_ptr<SnapshotSink> sink) {
    attach(sink.get());
    owned_sinks_.push_back(std::move(sink));
  }

  [[nodiscard]] bool has_sinks() const { return !sinks_.empty(); }
  [[nodiscard]] std::uint64_t snapshots_published() const {
    return publish_seq_;
  }

  /// Publishes one snapshot of the registry to every attached sink, in
  /// attach order. Called from the sim-time pump
  /// (sim::Simulation::publish_metrics_every); a publish with no sinks
  /// still advances the sequence so numbered artifacts stay aligned with
  /// the pump schedule.
  void publish(SimTime at) {
    const Snapshot snap{at, publish_seq_++, &registry};
    for (SnapshotSink* sink : sinks_) sink->on_snapshot(snap);
  }

 private:
  std::vector<SnapshotSink*> sinks_;
  std::vector<std::unique_ptr<SnapshotSink>> owned_sinks_;
  std::uint64_t publish_seq_ = 0;
};

}  // namespace sv::obs
